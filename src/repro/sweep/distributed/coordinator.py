"""The sweep coordinator: shard, dispatch, collect, survive.

:class:`SweepCoordinator` owns the authoritative state of one distributed
sweep — which points are done, which are pending, how often each has been
requeued — and serves any number of workers over an asyncio TCP server.
Scheduling is pull-based: an idle worker checks out the next pending
chunk; there is no static assignment, so a slow host simply takes fewer
chunks.

Sharding preserves the grid's axis order: pending points are split into
*contiguous* chunks (:func:`~repro.sweep.engine.plan.partition_indices`),
so iterative warm starts inside a chunk stay adjacent on the parameter
grid and the merged table is ordered exactly like the serial runner's.
On a batch-capable backend the chunk boundaries align to the backend's
preferred batch size, so each chunk is a whole number of stacked solves
shipped back as batched ``rows`` frames (protocol v2).

Fault model
-----------

- **A point fails numerically** — the worker streams a NaN row with a
  :class:`~repro.sweep.results.PointFailure`; the sweep continues.
- **A worker dies mid-chunk** (crash, kill, network partition) — on a
  pointwise-framing chunk rows stream per point, so the coordinator
  requeues exactly the unfinished suffix at the *front* of the queue,
  blaming only the point in flight; surviving workers pick it up.  On a
  batch-framing chunk a whole batch may be in flight, so the unfinished
  remainder is requeued *without blame* and the retry is downgraded to
  pointwise framing — a genuinely poisonous point is then isolated and
  blamed by the per-point machinery, and the healthy members of its
  batch never inherit strikes.
- **A point keeps killing workers** — after ``max_requeues`` requeues it
  is poisoned: NaN row, ``stage="worker"`` error record, sweep continues.
- **Every worker is gone** — the supervisor aborts with
  :class:`DistributedSweepError`; completed rows are already in the
  checkpoint (when one is configured), so the next run resumes instead of
  restarting.
"""

from __future__ import annotations

import asyncio
import itertools
import logging
import socket as socket_module
from collections import deque
from dataclasses import dataclass
from typing import (
    Deque,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro import obs
from repro.sweep.backends.base import Metric
from repro.sweep.distributed.checkpoint import SweepCheckpoint
from repro.sweep.distributed.protocol import (
    CAPABILITIES,
    PROTOCOL_VERSION,
    ProtocolError,
    recv_message,
    send_message,
)
from repro.sweep.engine.collector import RowCollector
from repro.sweep.engine.plan import DEFAULT_MAX_REQUEUES, partition_indices
from repro.sweep.results import PointFailure

__all__ = ["DEFAULT_MAX_REQUEUES", "DistributedSweepError", "SweepCoordinator"]

logger = logging.getLogger(__name__)


class DistributedSweepError(RuntimeError):
    """The distributed sweep cannot make progress (e.g. all workers died)."""


@dataclass
class _Chunk:
    """One contiguous span of pending grid points.

    ``pointwise`` forces per-point framing on a batch-capable backend:
    set on requeued chunks so the retry isolates a poisonous point
    instead of losing (and re-blaming) whole batches.
    """

    chunk_id: int
    indices: List[int]
    points: List[Dict[str, float]]
    pointwise: bool = False


class SweepCoordinator:
    """Authoritative state + worker protocol handler of one sweep.

    Parameters
    ----------
    model, metrics:
        The prepared sweep backend template and metric specs shipped to
        every worker.
    points:
        All grid points in enumeration order (the row indices of the
        result table).
    done_rows, done_errors:
        Rows already completed (e.g. loaded from a checkpoint); only the
        remaining points are sharded.
    done_requeues:
        Worker-death blame counts carried over from a checkpoint, so a
        point that crashed workers in a previous run keeps its record
        and eventually poisons instead of re-killing the fleet forever.
    n_chunks:
        Target chunk count across the whole sweep (oversubscribe workers
        ~4x so pull-scheduling can balance load).
    checkpoint:
        Optional open :class:`~repro.sweep.distributed.checkpoint.SweepCheckpoint`
        to journal every completed row.
    max_requeues:
        Worker-death retries per point before poisoning it.
    wire_batching:
        When ``False``, a batch-capable backend is still sharded but
        every chunk is dispatched with pointwise framing — the
        pre-``rows``-frame wire behaviour.  A benchmark baseline knob,
        not an operational one.
    """

    def __init__(
        self,
        model,
        metrics: Sequence[Metric],
        points: Sequence[Mapping[str, float]],
        *,
        n_chunks: int,
        done_rows: Optional[Dict[int, List[float]]] = None,
        done_errors: Optional[Dict[int, PointFailure]] = None,
        done_requeues: Optional[Dict[int, int]] = None,
        checkpoint: Optional[SweepCheckpoint] = None,
        max_requeues: int = DEFAULT_MAX_REQUEUES,
        wire_batching: bool = True,
    ) -> None:
        self.model = model
        self.metrics = list(metrics)
        self.points = [dict(p) for p in points]
        self.max_requeues = max_requeues
        self._checkpoint = checkpoint
        self._requeues: Dict[int, int] = dict(done_requeues or {})
        self._chunk_ids = itertools.count()
        # The run-level trace (if the sweep runs with telemetry active).
        # Captured here, in the runner's context, because the asyncio
        # server invokes handle_worker from the event loop's own context.
        self._trace = obs.current_trace()
        self._collector = RowCollector(
            len(self.metrics), trace=self._trace, checkpoint=checkpoint
        )
        self._collector.preload(done_rows or {}, done_errors or {})
        self._batch_capable = bool(getattr(model, "batch_capable", False))
        self._wire_batching = bool(wire_batching)
        self._pending: Deque[_Chunk] = deque(
            self._shard([i for i in range(len(points)) if i not in self._rows],
                        n_chunks)
        )
        self._cond = asyncio.Condition()
        self._failure: Optional[BaseException] = None
        self._n_connected = 0
        self._n_ever_connected = 0
        if self._trace is not None:
            self._note_queue_depth()

    @property
    def _rows(self) -> Dict[int, List[float]]:
        """Completed rows (the collector's first-write-wins map)."""
        return self._collector.rows

    @property
    def _errors(self) -> Dict[int, PointFailure]:
        return self._collector.errors

    # ------------------------------------------------------------------ #
    # sharding
    # ------------------------------------------------------------------ #
    def _shard(self, remaining: List[int], n_chunks: int) -> List[_Chunk]:
        """Contiguous chunks over the remaining indices.

        Delegates to the engine's partition planner: after a checkpoint
        resume the remaining indices may have gaps, and each maximal
        contiguous run is chunked separately so no chunk ever spans a
        gap (warm starts stay adjacent).  Batch-capable backends get
        chunk boundaries aligned to their preferred batch size, so each
        chunk is a whole number of stacked solves.
        """
        align = (
            max(1, self.model.resolve_batch_size(len(self.points)))
            if self._batch_capable and self._wire_batching
            else 1
        )
        return [
            _Chunk(
                chunk_id=next(self._chunk_ids),
                indices=indices,
                points=[self.points[i] for i in indices],
                pointwise=self._batch_capable and not self._wire_batching,
            )
            for indices in partition_indices(remaining, n_chunks, align=align)
        ]

    # ------------------------------------------------------------------ #
    # progress
    # ------------------------------------------------------------------ #
    @property
    def n_points(self) -> int:
        return len(self.points)

    @property
    def n_completed(self) -> int:
        """Rows done so far (including checkpointed and poisoned ones)."""
        return len(self._rows)

    @property
    def n_connected(self) -> int:
        return self._n_connected

    @property
    def n_ever_connected(self) -> int:
        return self._n_ever_connected

    def _complete(self) -> bool:
        return len(self._rows) == len(self.points)

    def result_rows(
        self,
    ) -> Tuple[Dict[int, List[float]], Dict[int, PointFailure]]:
        """The merged ``index -> row`` / ``index -> failure`` maps."""
        return dict(self._rows), dict(self._errors)

    async def abort(self, exc: BaseException) -> None:
        """Fail the sweep: :meth:`wait` raises, workers get shut down."""
        async with self._cond:
            if self._failure is None:
                self._failure = exc
            self._cond.notify_all()

    async def wait(self) -> None:
        """Block until every row is in (or the sweep aborted)."""
        async with self._cond:
            await self._cond.wait_for(
                lambda: self._failure is not None or self._complete()
            )
            if self._failure is not None:
                raise DistributedSweepError(
                    f"distributed sweep failed with "
                    f"{self.n_points - self.n_completed} of {self.n_points} "
                    f"points unfinished: {self._failure}"
                ) from self._failure

    async def drain(self, timeout: float = 5.0) -> None:
        """Give connected workers time to complete the shutdown handshake.

        Called after :meth:`wait` succeeds, before the server closes —
        otherwise the final ``chunk_done``/``shutdown`` exchange races
        the teardown and healthy workers see their connection die.
        """
        async def _all_gone() -> None:
            async with self._cond:
                await self._cond.wait_for(lambda: self._n_connected == 0)

        try:
            await asyncio.wait_for(_all_gone(), timeout)
        except asyncio.TimeoutError:
            logger.warning(
                "%d worker(s) still connected after the %.1fs shutdown "
                "grace period; closing anyway",
                self._n_connected,
                timeout,
            )

    # ------------------------------------------------------------------ #
    # bookkeeping (call while holding self._cond)
    # ------------------------------------------------------------------ #
    def _note_queue_depth(self) -> None:
        if self._trace is not None:
            self._trace.gauge("dist.queue.depth", len(self._pending))

    def _store_row(
        self,
        index: int,
        values: Sequence[float],
        error: Optional[PointFailure],
    ) -> bool:
        """Record one completed row; False on duplicate delivery
        (requeue race — first write wins, telemetry must not merge)."""
        return self._collector.store(index, values, error)

    def _poison(self, index: int) -> None:
        count = self._requeues.get(index, 0)
        logger.warning(
            "point %d requeued %d times after killing its worker; "
            "recording a NaN row and moving on",
            index,
            count,
        )
        stored = self._store_row(
            index,
            [float("nan")] * len(self.metrics),
            PointFailure(
                index=index,
                point=self.points[index],
                stage="worker",
                error_type="WorkerDied",
                message=(
                    f"worker died on this point {count} time(s); "
                    f"gave up after max_requeues={self.max_requeues}"
                ),
            ),
        )
        if stored and self._trace is not None:
            # the worker that would have recorded this point's span died
            # with it — a synthetic zero-duration span keeps the merged
            # trace covering every grid point exactly once
            self._trace.incr("dist.points.poisoned")
            now = self._trace.now()
            self._trace.add_span(
                "sweep.point", now, now,
                index=index, stage="worker", poisoned=True,
            )

    def _pop_live_chunk(self) -> Optional[_Chunk]:
        """Next chunk with poisoned points filtered out (may finish sweep)."""
        while self._pending:
            chunk = self._pending.popleft()
            live_indices: List[int] = []
            for index in chunk.indices:
                if index in self._rows:
                    continue  # completed elsewhere (duplicate after requeue)
                if self._requeues.get(index, 0) > self.max_requeues:
                    self._poison(index)
                else:
                    live_indices.append(index)
            if live_indices:
                return _Chunk(
                    chunk_id=next(self._chunk_ids),
                    indices=live_indices,
                    points=[self.points[i] for i in live_indices],
                    pointwise=chunk.pointwise,
                )
        return None

    async def _checkout_chunk(self) -> Optional[_Chunk]:
        async with self._cond:
            while True:
                if self._failure is not None:
                    return None
                chunk = self._pop_live_chunk()
                if chunk is not None:
                    self._note_queue_depth()
                    return chunk
                if self._complete():
                    self._cond.notify_all()
                    return None
                # no pending work, sweep unfinished: another worker holds
                # the remaining chunks — wait in case it dies and they
                # come back
                await self._cond.wait()

    async def _requeue(
        self,
        chunk: _Chunk,
        done: Set[int],
        reason: BaseException,
        blame: bool = True,
        pointwise: bool = False,
    ) -> None:
        async with self._cond:
            unfinished = [
                i for i in chunk.indices
                if i not in done and i not in self._rows
            ]
            if unfinished:
                # on a pointwise-framing chunk rows stream per point in
                # order, so the first unfinished index is the one being
                # solved when the worker died — blame it alone; the
                # healthy tail of the chunk must not inherit retry counts
                # (it would get poisoned wholesale).  No blame at all
                # when the chunk never reached the worker (dispatch to an
                # already-dead socket) or when it was batch-framed (a
                # whole batch was in flight — the caller downgrades the
                # retry to pointwise instead, which isolates a genuine
                # killer on the next attempt).
                if blame:
                    self._requeues[unfinished[0]] = (
                        self._requeues.get(unfinished[0], 0) + 1
                    )
                    if self._checkpoint is not None:
                        self._checkpoint.append_requeue(unfinished[0])
                self._pending.appendleft(
                    _Chunk(
                        chunk_id=next(self._chunk_ids),
                        indices=unfinished,
                        points=[self.points[i] for i in unfinished],
                        pointwise=pointwise or chunk.pointwise,
                    )
                )
                if self._trace is not None:
                    self._trace.incr("dist.requeues")
                    self._trace.event(
                        "dist.requeue",
                        index=unfinished[0],
                        n_points=len(unfinished),
                        blame=blame,
                        reason=type(reason).__name__,
                    )
                self._note_queue_depth()
                logger.warning(
                    "worker died mid-chunk (%s); requeued %d unfinished "
                    "point(s) starting at index %d",
                    reason,
                    len(unfinished),
                    unfinished[0],
                )
            self._cond.notify_all()

    # ------------------------------------------------------------------ #
    # the per-worker protocol handler (asyncio server callback)
    # ------------------------------------------------------------------ #
    async def handle_worker(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        try:
            hello = await recv_message(reader)
            if hello.get("kind") != "hello":
                raise ProtocolError(f"expected hello, got {hello.get('kind')!r}")
            if hello.get("version") != PROTOCOL_VERSION:
                # name both sides' versions *and* this side's capabilities
                # so the stale peer's operator can diagnose what is
                # missing (e.g. a v1 worker lacks the batched `rows`
                # framing) instead of seeing a bare number mismatch
                raise ProtocolError(
                    f"protocol version mismatch: coordinator "
                    f"{PROTOCOL_VERSION} (capabilities: "
                    f"{', '.join(CAPABILITIES)}), worker "
                    f"{hello.get('version')}"
                )
            await send_message(
                writer,
                {
                    "kind": "template",
                    "model": self.model,
                    "metrics": self.metrics,
                    "telemetry": self._trace is not None,
                },
            )
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            OSError,
            ProtocolError,
        ) as exc:
            logger.warning("worker %s rejected during handshake: %s", peer, exc)
            if isinstance(exc, ProtocolError):
                # tell the worker *why* (version mismatch, bad hello) —
                # otherwise its operator only sees a dropped connection
                # while the diagnosis sits in a log on another machine
                try:
                    await send_message(
                        writer, {"kind": "reject", "message": str(exc)}
                    )
                except (ConnectionError, OSError):
                    pass
            writer.close()
            return
        worker_label = hello.get("worker", str(peer))
        logger.info("worker %s joined", worker_label)
        async with self._cond:
            self._n_connected += 1
            self._n_ever_connected += 1
            self._cond.notify_all()
        sock = writer.get_extra_info("socket")
        if sock is not None:
            # kernel-level dead-peer detection: a silent partition (no
            # RST ever arrives) still surfaces as a connection error
            # instead of hanging the chunk forever.  Tighten the probe
            # schedule where the platform allows it — the Linux default
            # (2h idle) would stall a sweep for hours first.
            sock.setsockopt(
                socket_module.SOL_SOCKET, socket_module.SO_KEEPALIVE, 1
            )
            for option, value in (
                ("TCP_KEEPIDLE", 30),
                ("TCP_KEEPINTVL", 10),
                ("TCP_KEEPCNT", 6),
            ):
                if hasattr(socket_module, option):
                    sock.setsockopt(
                        socket_module.IPPROTO_TCP,
                        getattr(socket_module, option),
                        value,
                    )
        chunk: Optional[_Chunk] = None
        chunk_sent = False
        done_in_chunk: Set[int] = set()
        t_joined = self._trace.now() if self._trace is not None else 0.0
        t_dispatch = 0.0
        t_first_row: Optional[float] = None
        try:
            while True:
                chunk = await self._checkout_chunk()
                if chunk is None:
                    try:
                        await send_message(writer, {"kind": "shutdown"})
                    except (ConnectionError, OSError):
                        pass
                    break
                done_in_chunk = set()
                chunk_sent = False
                await send_message(
                    writer,
                    {
                        "kind": "chunk",
                        "chunk_id": chunk.chunk_id,
                        "indices": chunk.indices,
                        "points": chunk.points,
                        "pointwise": chunk.pointwise,
                    },
                )
                chunk_sent = True
                if self._trace is not None:
                    t_dispatch = self._trace.now()
                    t_first_row = None
                    self._trace.incr("dist.chunks.dispatched")
                expected = set(chunk.indices)
                while True:
                    message = await recv_message(reader)
                    if message["kind"] == "telemetry":
                        # counter deltas measure solver work actually
                        # done, so they merge unconditionally; spans
                        # wait for their row (exactly-once per point —
                        # the collector merges a stashed segment only
                        # when its row is first stored)
                        self._collector.apply_telemetry(message)
                    elif message["kind"] in ("row", "rows"):
                        if message["kind"] == "rows":
                            # one frame per stacked batch: counters merge
                            # once, per-point spans stash by index, and
                            # the rows store exactly like the per-point
                            # framing below
                            payloads = self._collector.apply_rows_frame(
                                message
                            )
                        else:
                            payloads = [message]
                        for payload in payloads:
                            index = payload["index"]
                            if index not in expected:
                                raise ProtocolError(
                                    f"row for index {index} outside chunk "
                                    f"{chunk.chunk_id}"
                                )
                            done_in_chunk.add(index)
                            if (
                                self._trace is not None
                                and t_first_row is None
                            ):
                                t_first_row = self._trace.now()
                            async with self._cond:
                                self._store_row(
                                    index,
                                    payload["values"],
                                    payload.get("error"),
                                )
                                self._cond.notify_all()
                    elif message["kind"] == "fatal":
                        # a configuration error: every point and every
                        # worker would fail identically — abort the sweep
                        # with the worker's diagnosis
                        await self.abort(
                            RuntimeError(
                                f"worker {worker_label} hit a configuration "
                                f"error on point {message.get('index')}: "
                                f"{message.get('error_type')}: "
                                f"{message.get('message')}"
                            )
                        )
                        chunk = None
                        break
                    elif message["kind"] == "chunk_done":
                        missing = expected - done_in_chunk
                        if missing:
                            raise ProtocolError(
                                f"worker finished chunk {chunk.chunk_id} but "
                                f"never sent rows for {sorted(missing)}"
                            )
                        if self._trace is not None:
                            now = self._trace.now()
                            attrs: Dict[str, object] = {
                                "chunk_id": chunk.chunk_id,
                                "n_points": len(chunk.indices),
                                "label": worker_label,
                            }
                            if t_first_row is not None:
                                # dispatch latency: send to first row back
                                attrs["first_row_s"] = t_first_row - t_dispatch
                            self._trace.add_span(
                                "dist.chunk", t_dispatch, now, **attrs
                            )
                        chunk = None
                        break
                    else:
                        raise ProtocolError(
                            f"unexpected message {message['kind']!r} "
                            "while a chunk is out"
                        )
        except asyncio.CancelledError:
            # event-loop teardown (the sweep is already decided); exit
            # quietly so the cancellation is not logged as a server error
            pass
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            OSError,
            ProtocolError,
        ) as exc:
            logger.warning("worker %s lost: %s", worker_label, exc)
            if chunk is not None:
                # batch-framed chunk: a whole batch was in flight when the
                # worker died, so no single point can be blamed — requeue
                # everything unblamed and downgrade the retry to pointwise
                # framing, where the per-point blame machinery isolates a
                # genuine killer on the next attempt
                batched = (
                    self._batch_capable and chunk_sent and not chunk.pointwise
                )
                await self._requeue(
                    chunk,
                    done_in_chunk,
                    exc,
                    blame=chunk_sent and not batched,
                    pointwise=batched,
                )
        finally:
            async with self._cond:
                self._n_connected -= 1
                self._cond.notify_all()
            if self._trace is not None:
                self._trace.add_span(
                    "dist.worker",
                    t_joined,
                    self._trace.now(),
                    label=worker_label,
                )
            writer.close()
            logger.info("worker %s left", worker_label)
