"""Sweep workers: the solve side of the distributed fan-out.

A worker connects to a coordinator (same machine or across the network),
receives the sweep backend template once, then loops: take one
contiguous chunk of grid points and stream it back through the engine's
shared loop (:func:`~repro.sweep.engine.wire.stream_partition`) — warm
start reset at the chunk boundary, the same
:func:`~repro.sweep.engine.points.solve_point_row` plumbing as the
serial path, one ``row`` message per point, or (batch-capable backends,
protocol v2) one stacked ``solve_batch`` and one ``rows`` frame per
batch.  Per-point numerical failures become NaN rows with error
records, exactly like the serial runner; they never kill the worker.

Three ways to run one:

- ``repro-experiments worker --connect HOST:PORT`` — a separate process,
  possibly on another machine;
- :func:`launch_local_workers` — forked local processes (what
  ``sweep --distributed --shards N`` uses);
- ``asyncio.create_task(run_worker(...))`` — in-process, sharing the
  coordinator's event loop (tests and docs; no parallelism, full
  protocol).
"""

from __future__ import annotations

import asyncio
import logging
import multiprocessing
import os
import socket as socket_module
from typing import List, Optional, Tuple

from repro import obs
from repro.sweep.distributed.protocol import (
    CAPABILITIES,
    PROTOCOL_VERSION,
    ProtocolError,
    recv_message,
    send_message,
)
from repro.sweep.engine.wire import WorkerConfigError, stream_partition

__all__ = [
    "launch_local_workers",
    "launch_service_workers",
    "run_service_worker",
    "run_worker",
    "service_worker_main",
    "worker_main",
]

logger = logging.getLogger(__name__)

#: Connection retry schedule: the coordinator may still be binding when a
#: freshly forked worker first dials.
CONNECT_RETRIES = 40
CONNECT_RETRY_DELAY = 0.25


async def _connect(
    host: str, port: int, retries: int, delay: float
) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    last_error: Optional[Exception] = None
    for attempt in range(retries):
        try:
            return await asyncio.open_connection(host, port)
        except OSError as exc:
            last_error = exc
            await asyncio.sleep(delay)
    raise ConnectionError(
        f"could not reach coordinator at {host}:{port} after "
        f"{retries} attempts: {last_error}"
    )


async def run_worker(
    host: str,
    port: int,
    *,
    connect_retries: int = CONNECT_RETRIES,
    connect_retry_delay: float = CONNECT_RETRY_DELAY,
    die_after_rows: Optional[int] = None,
    die_at_index: Optional[int] = None,
    trace: Optional[obs.Trace] = None,
) -> int:
    """Serve one coordinator until it sends ``shutdown``.

    Returns the number of rows solved.  *die_after_rows* /
    *die_at_index* are fault-injection hooks for tests and benchmarks:
    the worker aborts its connection (RST, no goodbye — indistinguishable
    from a crash on the coordinator side) after streaming that many rows,
    or just before solving that global point index.

    *trace* is this worker's own :class:`repro.obs.Trace` (e.g. the one
    behind ``worker --trace FILE``); when the coordinator's template asks
    for telemetry and none is given, a fresh one is created.  Either way
    the worker installs it for the duration of the connection — never the
    ambient trace it may have inherited by fork or by sharing the
    coordinator's event loop, which would double-record segments that are
    also shipped over the wire.
    """
    reader, writer = await _connect(
        host, port, connect_retries, connect_retry_delay
    )
    label = f"{socket_module.gethostname()}:{os.getpid()}"
    rows_sent = 0
    obs_token = None
    try:
        await send_message(
            writer,
            {
                "kind": "hello",
                "version": PROTOCOL_VERSION,
                "capabilities": list(CAPABILITIES),
                "worker": label,
            },
        )
        template = await recv_message(reader)
        if template["kind"] == "reject":
            raise ConnectionError(
                f"coordinator rejected this worker: {template.get('message')}"
            )
        if template["kind"] != "template":
            raise ProtocolError(
                f"expected a template, got {template['kind']!r}"
            )
        ship_telemetry = bool(template.get("telemetry"))
        if ship_telemetry and trace is None:
            trace = obs.Trace("sweep-worker", worker=label)
        if trace is not None:
            obs_token = obs.activate(trace)
        # everything recorded past this cursor has not been shipped yet;
        # the first point's segment therefore also carries the one-time
        # template-preparation spans below
        cursor = trace.mark() if trace is not None else 0
        model = template["model"]
        metrics = template["metrics"]
        model.prepare()
        logger.info("worker %s ready (%s)", label, model.describe())
        should_die = None
        if die_after_rows is not None or die_at_index is not None:
            should_die = lambda index, sent: (  # noqa: E731
                die_after_rows is not None and sent >= die_after_rows
            ) or (die_at_index is not None and index == die_at_index)
        while True:
            message = await recv_message(reader)
            if message["kind"] == "shutdown":
                break
            if message["kind"] != "chunk":
                raise ProtocolError(
                    f"expected a chunk, got {message['kind']!r}"
                )
            try:
                rows_sent, cursor, died = await stream_partition(
                    writer,
                    model,
                    metrics,
                    message["indices"],
                    message["points"],
                    pointwise=bool(message.get("pointwise")),
                    trace=trace,
                    ship_telemetry=ship_telemetry,
                    cursor=cursor,
                    rows_sent=rows_sent,
                    should_die=should_die,
                    fault_label=f"worker {label}",
                )
            except WorkerConfigError as err:
                # a *configuration* error (bad metric spec, unknown
                # place) — it would fail on every point and every
                # worker.  Report the diagnosis so the coordinator
                # aborts the sweep with it instead of watching the
                # whole fleet die one connection-reset at a time.
                # Worker-local failures (MemoryError, OSError…)
                # deliberately propagate instead: this worker dies
                # and the point is requeued to roomier survivors.
                await send_message(
                    writer,
                    {
                        "kind": "fatal",
                        "index": err.index,
                        "error_type": type(err.error).__name__,
                        "message": str(err.error),
                    },
                )
                return rows_sent
            if died:
                return rows_sent
            await send_message(
                writer, {"kind": "chunk_done", "chunk_id": message["chunk_id"]}
            )
    finally:
        if obs_token is not None:
            obs.deactivate(obs_token)
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    return rows_sent


async def run_service_worker(
    host: str,
    port: int,
    *,
    connect_retries: int = CONNECT_RETRIES,
    connect_retry_delay: float = CONNECT_RETRY_DELAY,
    die_after_rows: Optional[int] = None,
    trace: Optional[obs.Trace] = None,
) -> int:
    """Serve one :class:`~repro.sweep.service.SweepService` until shutdown.

    The service-mode sibling of :func:`run_worker`: instead of one
    template and one sweep, this worker lives across many requests.  It
    keeps its own bounded LRU of prepared templates (capacity set by the
    service's ``welcome``), asks for a template it is missing with
    ``need_template`` (self-healing: a respawned worker starts empty and
    refills on demand), resets the warm start at every task boundary
    (tasks from different requests are unrelated grid regions), and
    streams ``telemetry``-before-``row`` per point exactly like the
    one-shot worker so the service merges each stored row's spans once.

    *die_after_rows* is the same fault-injection hook as on
    :func:`run_worker`: the connection is aborted (RST — indistinguishable
    from a crash) before solving the Nth row across all tasks.
    """
    from repro.sweep.service.template_cache import LRUTemplates

    reader, writer = await _connect(
        host, port, connect_retries, connect_retry_delay
    )
    label = f"{socket_module.gethostname()}:{os.getpid()}"
    rows_sent = 0
    obs_token = None
    try:
        await send_message(
            writer,
            {
                "kind": "hello",
                "version": PROTOCOL_VERSION,
                "capabilities": list(CAPABILITIES),
                "worker": label,
                "role": "service-worker",
            },
        )
        welcome = await recv_message(reader)
        if welcome["kind"] == "reject":
            raise ConnectionError(
                f"service rejected this worker: {welcome.get('message')}"
            )
        if welcome["kind"] != "welcome":
            raise ProtocolError(
                f"expected a welcome, got {welcome['kind']!r}"
            )
        ship_telemetry = bool(welcome.get("telemetry"))
        if ship_telemetry and trace is None:
            trace = obs.Trace("service-worker", worker=label)
        if trace is not None:
            obs_token = obs.activate(trace)
        cursor = trace.mark() if trace is not None else 0
        templates = LRUTemplates(int(welcome.get("capacity", 4)))
        logger.info("service worker %s ready", label)
        while True:
            message = await recv_message(reader)
            kind = message["kind"]
            if kind == "shutdown":
                break
            if kind == "template":
                # unsolicited pre-warm: prepare and cache it
                model = message["model"]
                model.prepare()
                templates.put(message["fingerprint"], model)
                continue
            if kind != "task":
                raise ProtocolError(f"expected a task, got {kind!r}")
            fingerprint = message["fingerprint"]
            model = templates.get(fingerprint)
            if model is None:
                await send_message(
                    writer,
                    {"kind": "need_template", "fingerprint": fingerprint},
                )
                shipped = await recv_message(reader)
                if (
                    shipped["kind"] != "template"
                    or shipped.get("fingerprint") != fingerprint
                ):
                    raise ProtocolError(
                        f"expected the {fingerprint[:12]} template, got "
                        f"{shipped['kind']!r}"
                    )
                model = shipped["model"]
                with obs.span(
                    "service.worker.template", fingerprint=fingerprint
                ):
                    model.prepare()
                templates.put(fingerprint, model)
            metrics = message["metrics"]
            # task boundary handled inside stream_partition: the previous
            # task may be another request entirely — never warm-start
            # across it
            try:
                rows_sent, cursor, died = await stream_partition(
                    writer,
                    model,
                    metrics,
                    message["indices"],
                    message["points"],
                    pointwise=bool(message.get("pointwise")),
                    trace=trace,
                    ship_telemetry=ship_telemetry,
                    cursor=cursor,
                    rows_sent=rows_sent,
                    should_die=(
                        (lambda index, sent: sent >= die_after_rows)
                        if die_after_rows is not None
                        else None
                    ),
                    fault_label=f"service worker {label}",
                )
            except WorkerConfigError as err:
                # configuration error: it belongs to this *request*,
                # not this worker.  Report it and stay alive for the
                # next task (the one-shot worker exits here instead).
                await send_message(
                    writer,
                    {
                        "kind": "fatal",
                        "index": err.index,
                        "error_type": type(err.error).__name__,
                        "message": str(err.error),
                    },
                )
                continue
            if died:
                return rows_sent
            await send_message(
                writer,
                {"kind": "task_done", "task_id": message["task_id"]},
            )
    finally:
        if obs_token is not None:
            obs.deactivate(obs_token)
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    return rows_sent


def service_worker_main(
    host: str,
    port: int,
    *,
    die_after_rows: Optional[int] = None,
    trace: Optional[obs.Trace] = None,
) -> int:
    """Synchronous entry point: serve one service until shutdown."""
    return asyncio.run(
        run_service_worker(host, port, die_after_rows=die_after_rows, trace=trace)
    )


def _service_worker_process_main(
    host: str, port: int, die_after_rows: Optional[int], hard_exit: bool
) -> None:
    try:
        rows = service_worker_main(host, port, die_after_rows=die_after_rows)
    except Exception as exc:  # the service requeues and respawns
        logger.warning("service worker failed: %s", exc)
        raise SystemExit(1)
    if die_after_rows is not None and hard_exit:
        os._exit(17)  # simulate a crash: no cleanup
    raise SystemExit(0)


def launch_service_workers(
    n: int,
    host: str,
    port: int,
    *,
    die_after_rows: Optional[int] = None,
    die_worker: Optional[int] = None,
) -> List[multiprocessing.Process]:
    """Fork *n* persistent service workers pointed at ``host:port``.

    The service-mode sibling of :func:`launch_local_workers`; the fault
    hook arms worker *die_worker* (default: the first) to hard-exit after
    *die_after_rows* rows, which is how the fault-injection suite kills a
    shard mid-request deterministically.
    """
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )
    processes: List[multiprocessing.Process] = []
    for i in range(n):
        inject = die_after_rows if i == (die_worker or 0) else None
        process = ctx.Process(
            target=_service_worker_process_main,
            args=(host, port, inject, True),
            name=f"service-worker-{i}",
            daemon=True,
        )
        process.start()
        processes.append(process)
    return processes


def worker_main(
    host: str,
    port: int,
    *,
    die_after_rows: Optional[int] = None,
    trace: Optional[obs.Trace] = None,
) -> int:
    """Synchronous entry point: run one worker to completion.

    What the ``repro-experiments worker`` subcommand and
    :func:`launch_local_workers` execute.  Returns the number of rows
    solved; connection failures propagate as ``ConnectionError``.
    """
    return asyncio.run(
        run_worker(host, port, die_after_rows=die_after_rows, trace=trace)
    )


def _worker_process_main(
    host: str, port: int, die_after_rows: Optional[int], hard_exit: bool
) -> None:
    try:
        rows = worker_main(host, port, die_after_rows=die_after_rows)
    except Exception as exc:  # worker processes die quietly, coordinator requeues
        logger.warning("sweep worker failed: %s", exc)
        raise SystemExit(1)
    if die_after_rows is not None and hard_exit:
        # simulate a crash for fault-injection benchmarks: no cleanup
        os._exit(17)
    raise SystemExit(0)


def launch_local_workers(
    n: int,
    host: str,
    port: int,
    *,
    die_after_rows: Optional[int] = None,
    die_worker: Optional[int] = None,
) -> List[multiprocessing.Process]:
    """Fork *n* local worker processes pointed at ``host:port``.

    Uses the ``fork`` start method when the platform has it (workers
    inherit the loaded interpreter — startup is milliseconds, not a full
    reimport) and falls back to ``spawn`` elsewhere.  *die_after_rows*
    arms the fault-injection hook on worker *die_worker* (default: the
    first) — that worker hard-exits mid-sweep, which is how the
    fault-tolerance benchmark kills a worker deterministically.
    """
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )
    processes: List[multiprocessing.Process] = []
    for i in range(n):
        inject = die_after_rows if i == (die_worker or 0) else None
        process = ctx.Process(
            target=_worker_process_main,
            args=(host, port, inject, True),
            name=f"sweep-worker-{i}",
            daemon=True,
        )
        process.start()
        processes.append(process)
    return processes
