"""Distributed sweep fan-out: shard one grid across workers over TCP.

The paper's experiments are dense parameter sweeps (the Figure 4/5
threshold and delay grids); this package scales them past one machine.
A :class:`~repro.sweep.distributed.runner.DistributedSweepRunner` shards
a :class:`~repro.sweep.grid.SweepGrid` into contiguous, axis-ordered
chunks (so iterative warm starts stay adjacent), a
:class:`~repro.sweep.distributed.coordinator.SweepCoordinator` hands the
chunks to whichever workers connect — forked local processes, in-process
asyncio tasks, or ``repro-experiments worker --connect`` processes on
other machines — and streams the result rows back into a
:class:`~repro.sweep.results.SweepResult` ordered exactly like the
serial runner's (bit-identical under the direct solvers).

The layer is fault-tolerant at three granularities: a point that fails
numerically yields a NaN row plus an error record; a worker that dies
mid-chunk gets its unfinished points requeued to the survivors; an
interrupted sweep resumes from a row-level
:class:`~repro.sweep.distributed.checkpoint.SweepCheckpoint` instead of
restarting.  See ``docs/distributed.md`` for topology, failure
semantics, and the checkpoint format.
"""

from repro.sweep.distributed.checkpoint import (
    CheckpointMismatchError,
    SweepCheckpoint,
    sweep_fingerprint,
)
from repro.sweep.distributed.coordinator import (
    DistributedSweepError,
    SweepCoordinator,
)
from repro.sweep.distributed.protocol import PROTOCOL_VERSION, ProtocolError
from repro.sweep.distributed.runner import DistributedSweepRunner
from repro.sweep.distributed.worker import (
    launch_local_workers,
    launch_service_workers,
    run_service_worker,
    run_worker,
    service_worker_main,
    worker_main,
)

__all__ = [
    "PROTOCOL_VERSION",
    "CheckpointMismatchError",
    "DistributedSweepError",
    "DistributedSweepRunner",
    "ProtocolError",
    "SweepCheckpoint",
    "SweepCoordinator",
    "launch_local_workers",
    "launch_service_workers",
    "run_service_worker",
    "run_worker",
    "service_worker_main",
    "sweep_fingerprint",
    "worker_main",
]
