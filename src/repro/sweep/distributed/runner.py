"""`DistributedSweepRunner`: the sharded coordinator/worker sweep path.

A drop-in sibling of :class:`~repro.sweep.runner.SweepRunner` (same
constructor contract, same :meth:`run` signature and result table) that
shards the grid into contiguous, axis-ordered chunks and fans them out
over an asyncio TCP job queue instead of a process pool:

>>> from repro.sweep import SweepGrid, build_mm1k_net
>>> from repro.sweep.distributed import DistributedSweepRunner
>>> runner = DistributedSweepRunner(
...     build_mm1k_net(), ["mean_tokens:queue"], n_shards=2,
...     worker_mode="inline",
... )
>>> result = runner.run(SweepGrid({"arrive": [0.5, 1.0, 1.5]}))
>>> len(result)
3

Worker modes:

- ``"process"`` (default) — fork ``n_shards`` local worker processes;
  the zero-config way to use every core of one machine.
- ``"inline"`` — run the workers as asyncio tasks inside this process:
  no parallelism, full wire protocol (tests, docs, debugging).
- external — set ``n_shards=0`` and point
  ``repro-experiments worker --connect HOST:PORT`` processes (any
  machine that can reach the bind address) at :attr:`address`; the
  coordinator hands chunks to whoever connects.

The merged table is ordered exactly like the serial runner's, and for
the direct (LU) solver paths it is bit-identical to it; iterative
methods agree to solver tolerance because chunk boundaries reset the
warm start.  A checkpoint file makes interrupted sweeps resumable — see
:mod:`repro.sweep.distributed.checkpoint`.
"""

from __future__ import annotations

import asyncio
import logging
import socket
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro import obs
from repro.petri.analysis import ReachabilityOptions
from repro.petri.net import PetriNet
from repro.sweep.backends import SweepBackend
from repro.sweep.backends.base import Metric
from repro.sweep.distributed.checkpoint import SweepCheckpoint
from repro.sweep.distributed.coordinator import (
    DEFAULT_MAX_REQUEUES,
    DistributedSweepError,
    SweepCoordinator,
)
from repro.sweep.distributed.worker import launch_local_workers, run_worker
from repro.sweep.results import PointFailure, SweepResult
from repro.sweep.runner import (
    CHUNKS_PER_WORKER,
    SweepRunner,
    solve_missing_rows,
)

__all__ = ["DistributedSweepRunner"]

logger = logging.getLogger(__name__)

#: Supervisor poll interval (worker-process liveness checks).
_SUPERVISE_INTERVAL = 0.1


class DistributedSweepRunner(SweepRunner):
    """Shard a sweep grid over TCP-connected workers.

    Parameters
    ----------
    model, metrics, options, backend, method, tol, max_iter:
        Exactly as :class:`~repro.sweep.runner.SweepRunner`.
    n_shards:
        Local workers to launch (``worker_mode`` decides how).  ``0``
        launches none and waits for external ``repro-experiments worker``
        processes to connect to :attr:`address`.
    worker_mode:
        ``"process"`` (forked local processes) or ``"inline"`` (asyncio
        tasks in this process; no parallelism, full protocol).
    host, port:
        Bind address of the coordinator (default loopback, ephemeral
        port).  Bind a routable address to accept workers from other
        machines — on trusted networks only (the channel ships pickles).
    checkpoint:
        Path to a row-level journal; when it exists and matches this
        sweep, completed rows are skipped and the file is appended to.
    n_chunks:
        Total chunk target (default ``4 * n_shards``, or 16 with
        external workers).
    max_requeues:
        Times one point may kill a worker and be retried before it is
        poisoned (NaN row + error record); default 2.  Blame counts are
        journalled to the checkpoint, so a point that deterministically
        crashes workers converges to a poison verdict across resumes
        even when each run loses its whole fleet to it.
    wire_batching:
        ``False`` forces per-point wire framing (and per-point solves)
        even on a batch-capable backend — the pre-v2 behaviour, kept as
        the baseline for ``benchmarks/bench_wire_batching.py``.
    """

    def __init__(
        self,
        model: Union[PetriNet, SweepBackend],
        metrics: Sequence[Metric],
        options: ReachabilityOptions = ReachabilityOptions(),
        backend: str = "auto",
        method: str = "auto",
        tol: Optional[float] = None,
        max_iter: Optional[int] = None,
        preflight: bool = True,
        *,
        n_shards: int = 2,
        worker_mode: str = "process",
        host: str = "127.0.0.1",
        port: int = 0,
        checkpoint: Optional[Union[str, Path]] = None,
        n_chunks: Optional[int] = None,
        max_requeues: Optional[int] = None,
        wire_batching: bool = True,
        _fault_injection: Optional[Dict[str, int]] = None,
    ) -> None:
        super().__init__(
            model,
            metrics,
            options=options,
            backend=backend,
            method=method,
            tol=tol,
            max_iter=max_iter,
            preflight=preflight,
        )
        if n_shards < 0:
            raise ValueError(f"n_shards must be >= 0, got {n_shards}")
        if worker_mode not in ("process", "inline"):
            raise ValueError(
                f"worker_mode must be 'process' or 'inline', got {worker_mode!r}"
            )
        if n_shards == 0 and port == 0 and worker_mode == "process":
            # external workers need a knowable port; an ephemeral one is
            # printed from .address, so this is allowed — just surprising
            logger.info(
                "n_shards=0: waiting for external workers; read .address "
                "for the ephemeral port"
            )
        self.n_shards = n_shards
        self.worker_mode = worker_mode
        self.checkpoint_path = Path(checkpoint) if checkpoint else None
        self.n_chunks = n_chunks
        self.max_requeues = max_requeues
        self.wire_batching = wire_batching
        self._fault_injection = _fault_injection or {}
        self._sock: Optional[socket.socket] = None
        self._host = host
        self._port = port
        self._bound_address: Optional[Tuple[str, int]] = None
        self._bind()

    # ------------------------------------------------------------------ #
    # socket lifecycle: bound eagerly so .address is printable before run
    # ------------------------------------------------------------------ #
    def _bind(self) -> None:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self._host, self._port))
        sock.listen(128)
        sock.setblocking(False)
        self._sock = sock
        self._bound_address = sock.getsockname()[:2]

    def _close_sock(self) -> None:
        """Release the listening socket on paths that never serve it."""
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def close(self) -> None:
        """Release the coordinator's listening socket (idempotent).

        A runner binds its port eagerly so :attr:`address` is printable
        before :meth:`run`; call this (or use the runner as a context
        manager) when a constructed runner will not be run after all.
        """
        self._close_sock()

    def __enter__(self) -> "DistributedSweepRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def address(self) -> Tuple[str, int]:
        """The coordinator's bound ``(host, port)``.

        After a run (the event loop consumed the socket) this keeps
        answering with the address workers actually used — it never
        binds a fresh port as a side effect of being read.
        """
        if self._sock is None and self._bound_address is None:
            self._bind()
        if self._sock is not None:
            return self._sock.getsockname()[:2]
        return self._bound_address

    # ------------------------------------------------------------------ #
    # execution (replaces the serial/pool strategies of the base class)
    # ------------------------------------------------------------------ #
    def run(self, grid) -> "SweepResult":
        try:
            return super().run(grid)
        except BaseException:
            # never leak the bound port past a failed run — including
            # validation errors (bad axes, empty grid) raised by the
            # base class before _execute is entered
            self._close_sock()
            raise

    def _execute(
        self, axis_names: Sequence[str], points: Sequence[Mapping[str, float]]
    ) -> Tuple[List[List[float]], List[PointFailure]]:
        done_rows: Dict[int, List[float]] = {}
        done_errors: Dict[int, PointFailure] = {}
        done_requeues: Dict[int, int] = {}
        checkpoint: Optional[SweepCheckpoint] = None
        if self.checkpoint_path is not None:
            checkpoint = SweepCheckpoint(self.checkpoint_path)
            done_rows, done_errors, done_requeues = checkpoint.load(
                axis_names, self.metric_names, points, model=self.model
            )
            if done_rows:
                logger.info(
                    "checkpoint %s: resuming with %d of %d rows done",
                    self.checkpoint_path,
                    len(done_rows),
                    len(points),
                )

        if len(done_rows) == len(points):
            self._close_sock()
            rows_map, err_map = done_rows, done_errors
        elif not self._template_ships():
            # cannot fan out; solve the remaining points here, still
            # honouring (and appending to) the checkpoint
            self._close_sock()
            logger.warning(
                "solving %d of %d points serially instead",
                len(points) - len(done_rows),
                len(points),
            )
            rows_map, err_map = self._serial_fill(
                axis_names, points, done_rows, done_errors, checkpoint,
                has_state=bool(done_rows or done_requeues),
            )
        else:
            workers_hint = self.n_shards if self.n_shards > 0 else 4
            n_chunks = (
                self.n_chunks
                if self.n_chunks is not None
                else CHUNKS_PER_WORKER * workers_hint
            )
            coordinator = SweepCoordinator(
                self.model,
                self.metrics,
                points,
                n_chunks=n_chunks,
                done_rows=done_rows,
                done_errors=done_errors,
                done_requeues=done_requeues,
                checkpoint=checkpoint,
                max_requeues=(
                    self.max_requeues
                    if self.max_requeues is not None
                    else DEFAULT_MAX_REQUEUES
                ),
                wire_batching=self.wire_batching,
            )
            if checkpoint is not None:
                checkpoint.open_for_append(
                    axis_names, self.metric_names, points,
                    has_state=bool(done_rows or done_requeues),
                    model=self.model,
                )
            try:
                rows_map, err_map = self._fan_out(coordinator, points)
            finally:
                if checkpoint is not None:
                    checkpoint.close()

        rows = [rows_map[i] for i in range(len(points))]
        return rows, [err_map[i] for i in sorted(err_map)]

    def _serial_fill(
        self,
        axis_names: Sequence[str],
        points: Sequence[Mapping[str, float]],
        done_rows: Dict[int, List[float]],
        done_errors: Dict[int, PointFailure],
        checkpoint: Optional[SweepCheckpoint],
        has_state: bool,
    ) -> Tuple[Dict[int, List[float]], Dict[int, PointFailure]]:
        """Solve the unfinished points in this process, journalling each."""
        rows_map = dict(done_rows)
        err_map = dict(done_errors)
        trace = obs.current_trace()
        if trace is not None and rows_map:
            # checkpoint-resumed rows count as completed, matching the
            # coordinator path, so progress starts at the resumed offset
            trace.incr("sweep.rows.completed", len(rows_map))
            resumed_failed = sum(1 for i in err_map if i in rows_map)
            if resumed_failed:
                trace.incr("sweep.rows.failed", resumed_failed)
        if checkpoint is not None:
            checkpoint.open_for_append(
                axis_names,
                self.metric_names,
                points,
                has_state=has_state,
                model=self.model,
            )
        try:
            missing = [i for i in range(len(points)) if i not in rows_map]
            for index, row, failure in solve_missing_rows(
                self.model, self.metrics, points, missing
            ):
                rows_map[index] = row
                if failure is not None:
                    err_map[failure.index] = failure
                if checkpoint is not None:
                    checkpoint.append_row(index, row, failure)
        finally:
            if checkpoint is not None:
                checkpoint.close()
        return rows_map, err_map

    def _fan_out(
        self,
        coordinator: SweepCoordinator,
        points: Sequence[Mapping[str, float]],
    ) -> Tuple[Dict[int, List[float]], Dict[int, PointFailure]]:
        if self._sock is None:
            # a previous run consumed the socket; rebind for this one
            self._bind()
        host, port = self._sock.getsockname()[:2]
        processes = []
        if self.n_shards > 0 and self.worker_mode == "process":
            # fork before any event loop exists in this process
            processes = launch_local_workers(
                self.n_shards,
                host,
                port,
                die_after_rows=self._fault_injection.get("die_after_rows"),
                die_worker=self._fault_injection.get("die_worker"),
            )
        try:
            asyncio.run(self._serve(coordinator, processes))
        finally:
            self._cleanup_processes(processes)
            # the listening socket is consumed by the event loop; rebind
            # lazily if this runner is reused
            self._sock = None
        return coordinator.result_rows()

    async def _serve(self, coordinator: SweepCoordinator, processes) -> None:
        server = await asyncio.start_server(
            coordinator.handle_worker, sock=self._sock
        )
        host, port = self.address
        worker_tasks: List[asyncio.Task] = []
        if self.n_shards > 0 and self.worker_mode == "inline":
            die_worker = self._fault_injection.get("die_worker", 0)
            for i in range(self.n_shards):
                hooks = {}
                if die_worker in (i, -1):  # -1 arms every worker
                    for key in ("die_after_rows", "die_at_index"):
                        if key in self._fault_injection:
                            hooks[key] = self._fault_injection[key]
                worker_tasks.append(
                    asyncio.create_task(run_worker(host, port, **hooks))
                )
        supervisor = asyncio.create_task(
            self._supervise(coordinator, processes, worker_tasks)
        )
        kill_task: Optional[asyncio.Task] = None
        if "kill_worker_after_rows" in self._fault_injection and processes:
            kill_task = asyncio.create_task(
                self._kill_injector(coordinator, processes)
            )
        try:
            await coordinator.wait()
            await coordinator.drain()
        finally:
            for task in [supervisor, kill_task, *worker_tasks]:
                if task is not None:
                    task.cancel()
            for task in [supervisor, kill_task, *worker_tasks]:
                if task is not None:
                    try:
                        await task
                    except (asyncio.CancelledError, Exception):
                        pass
            server.close()
            await server.wait_closed()

    async def _supervise(
        self,
        coordinator: SweepCoordinator,
        processes,
        worker_tasks: List[asyncio.Task],
    ) -> None:
        """Abort the sweep when every worker is gone for good.

        Only watches workers this runner launched; with external workers
        (``n_shards=0``) the coordinator waits for connections
        indefinitely — interrupt it, then resume from the checkpoint.
        """
        if self.n_shards == 0:
            return
        while True:
            await asyncio.sleep(_SUPERVISE_INTERVAL)
            if self.worker_mode == "process":
                any_alive = any(p.is_alive() for p in processes)
            else:
                any_alive = any(not t.done() for t in worker_tasks)
            if not any_alive and coordinator.n_connected == 0:
                unfinished = coordinator.n_points - coordinator.n_completed
                if unfinished > 0:
                    await coordinator.abort(
                        DistributedSweepError(
                            f"all {self.n_shards} local worker(s) exited; "
                            f"{unfinished} point(s) never completed"
                        )
                    )
                return

    async def _kill_injector(self, coordinator: SweepCoordinator, processes) -> None:
        """Fault injection: SIGKILL one worker once N rows are in."""
        threshold = self._fault_injection["kill_worker_after_rows"]
        victim = processes[self._fault_injection.get("kill_worker", 0)]
        while coordinator.n_completed < threshold:
            await asyncio.sleep(0.02)
        if victim.is_alive():
            logger.warning(
                "fault injection: killing worker %s after %d rows",
                victim.name,
                coordinator.n_completed,
            )
            victim.kill()

    @staticmethod
    def _cleanup_processes(processes) -> None:
        for process in processes:
            if process.is_alive():
                process.terminate()
        for process in processes:
            process.join(timeout=5.0)

    # ------------------------------------------------------------------ #
    def describe_fanout(self) -> str:
        """One-line footer for the CLI."""
        if self.n_shards == 0:
            host, port = self._bound_address or (self._host, self._port)
            return f"external workers via {host}:{port}"
        kind = "process" if self.worker_mode == "process" else "inline"
        suffix = (
            f", checkpoint {self.checkpoint_path}" if self.checkpoint_path else ""
        )
        return f"{self.n_shards} local {kind} worker(s){suffix}"
