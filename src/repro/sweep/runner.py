"""Batched parameter sweeps over model backends.

:class:`SweepRunner` amortises the expensive, rate-independent half of a
model family across every point of a grid.  The family is described by a
:class:`~repro.sweep.backends.base.SweepBackend`: its template (reachability
graph, stage structure, sparsity pattern, symbolic LU analysis…) is built
once, and each grid point costs only a re-assembly plus the solve.  Three
backends ship (see :mod:`repro.sweep.backends`):

- ``gspn`` — exponential-only Petri nets via ``GSPNSolver`` rate rebinding
  (passing a :class:`~repro.petri.net.PetriNet` directly still works and
  wraps it in this backend);
- ``phase-type`` — the deterministic-delay CPU model, stage-expanded so
  Figure 4/5-style threshold/delay sweeps run batched;
- ``renewal`` — the exact closed form, for cross-checks.

Metrics are callables ``solution -> float`` or compact strings in the
backend's grammar — steady-state (``mean_tokens:<place>``,
``fraction:standby``, ``power``, …) or transient (``energy@5``,
``fraction:active@0.5``, ``time_to_threshold:0.01``); see
:mod:`repro.sweep.backends.base`.

**The engine.**  Execution itself lives in :mod:`repro.sweep.engine`:
the runner builds an :class:`~repro.sweep.engine.plan.ExecutionPlan`
(contiguous point partitions, batch sizing, retry budgets) and hands it
to an :class:`~repro.sweep.engine.executor.Executor` — the serial loop
or the in-machine process pool here, the distributed coordinator in
:mod:`repro.sweep.distributed`, the always-on daemon in
:mod:`repro.sweep.service`.  This module keeps the historical public
API (``iter_point_rows``, ``solve_point_row``, ``contiguous_chunks``…)
as thin re-exports.

**Preflight.**  Before solving anything, the runner verifies the sweep
configuration (:func:`repro.verify.preflight_sweep`): the chain structure
is classified from the already-built template (absorbing deadlocks and
fragmented stationary structure become named diagnostics instead of
``singular generator`` failures on every point), grid values are vetted,
and truncation monitoring is cross-checked.  Error-severity findings
abort in milliseconds with :class:`~repro.verify.PreflightError` —
before any point is solved and before any distributed fan-out; pass
``preflight=False`` to opt out.

**Failure isolation.**  A grid point whose *solve* raises a numerical
error (``ConvergenceError`` on a stiff corner, a singular chain at a
degenerate rate) does not abort the sweep: the point gets an all-NaN row
plus a :class:`~repro.sweep.results.PointFailure` record on the result,
and the remaining points keep solving — identically in the serial, pool,
and distributed paths.  Configuration errors (unknown axes, malformed
metric specs, unknown places) still raise immediately; they would fail
on every point.

**Fan-out.**  ``n_workers > 1`` distributes *contiguous, axis-ordered
partitions* of the grid over a process pool (the backend template ships
to each worker once via the pool initializer).  Contiguity keeps
iterative warm starts adjacent — each partition starts cold
(:meth:`~repro.sweep.backends.base.SweepBackend.reset_point_state`) and
warm-starts within itself, so a GMRES start never comes from a far-away
grid point.  Results are ordered like, and (for the direct solvers)
bit-identical to, the serial path.  When the template cannot be pickled
(e.g. a metric closure) the runner logs a warning and falls back to
serial execution; if the pool itself breaks mid-run, the fallback
resumes serially *from the unfinished points only* instead of re-solving
the whole grid.  For sharding a grid across hosts, see
:mod:`repro.sweep.distributed`.
"""

from __future__ import annotations

import logging
import pickle
from concurrent.futures import ProcessPoolExecutor  # noqa: F401  (monkeypatch seam)
from typing import (
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro import obs
from repro.petri.analysis import ReachabilityOptions
from repro.petri.net import PetriNet
from repro.sweep.backends import GSPNBackend, SweepBackend, evaluate_gspn_metric
from repro.sweep.backends.base import Metric, metric_name
from repro.sweep.engine.executor import PoolExecutor, SerialExecutor
from repro.sweep.engine.plan import (
    PARTITIONS_PER_WORKER,
    build_plan,
    contiguous_chunks,
)
from repro.sweep.engine.points import (
    METRIC_FAILURE_TYPES,
    SOLVE_FAILURE_TYPES,
    iter_partition_rows,
    metrics_row as _metrics_row,  # noqa: F401  (historical private name)
    solve_missing_rows,
    solve_point_row,
)
from repro.sweep.grid import SweepGrid
from repro.sweep.results import PointFailure, SweepResult

__all__ = [
    "METRIC_FAILURE_TYPES",
    "Metric",
    "SOLVE_FAILURE_TYPES",
    "SweepRunner",
    "contiguous_chunks",
    "evaluate_metric",
    "iter_point_rows",
    "metric_name",
    "solve_missing_rows",
    "solve_point_row",
]

logger = logging.getLogger(__name__)

#: Back-compat alias: the GSPN steady-state metric evaluator this module
#: historically exported.
evaluate_metric = evaluate_gspn_metric

#: Back-compat alias: partitions handed out per pool worker
#: (oversubscription for load balance; see
#: :data:`repro.sweep.engine.plan.PARTITIONS_PER_WORKER`).
CHUNKS_PER_WORKER = PARTITIONS_PER_WORKER


def iter_point_rows(
    model: SweepBackend,
    metrics: Sequence[Metric],
    points: Sequence[Mapping[str, float]],
    start: int = 0,
):
    """Yield ``(index, row, failure)`` for *points*, batching when the
    backend can.

    The historical public spelling of
    :func:`repro.sweep.engine.points.iter_partition_rows`: the shared
    inner loop of the serial runner and the pool workers.  A
    batch-capable backend gets the points in stacked batches of its
    preferred size under ``sweep.batch`` spans; everything downstream is
    unchanged — one ``sweep.point`` span, one row, and per-point failure
    isolation per grid point.  Indices are offset by *start* (a pool
    partition's base).
    """
    yield from iter_partition_rows(model, metrics, points, start)


class SweepRunner:
    """Solve one model family across a parameter grid.

    Parameters
    ----------
    model:
        A :class:`~repro.sweep.backends.base.SweepBackend`, or an
        exponential-only :class:`~repro.petri.net.PetriNet` (wrapped in a
        :class:`~repro.sweep.backends.GSPNBackend`, preserving the
        original net-first API).
    metrics:
        Metric specs (strings or callables); one result column each.
    options:
        Reachability exploration limits (GSPN nets only; ignored when a
        backend instance is passed).
    backend:
        CTMC linear-algebra backend for GSPN solves (``"auto"`` default;
        ignored when a backend instance is passed).
    method, tol, max_iter:
        Steady-state solver choice for GSPN solves —
        ``"auto"``/``"lu"``/``"gmres"``/``"power"`` plus the iterative
        tolerance and iteration budget (see
        :meth:`repro.markov.ctmc.CTMC.steady_state`).  Only legal when
        *model* is a net; a backend instance carries its own solver
        configuration, so passing these with one raises ``ValueError``
        instead of silently ignoring them.
    n_workers:
        ``None``/``0``/``1`` solves serially; ``>= 2`` fans contiguous
        partitions of points out over a process pool of that size.
    preflight:
        Verify the sweep configuration before solving anything (default
        ``True``): :func:`repro.verify.preflight_sweep` classifies the
        chain (absorbing deadlocks, fragmented stationary structure —
        free, the template already exists), vets grid values, and checks
        truncation monitoring.  Error-severity findings abort the run
        with :class:`~repro.verify.PreflightError` in milliseconds —
        before any point is solved and, in the distributed runner,
        before any worker receives a template; warnings are logged.
        Pass ``False`` (CLI: ``--no-preflight``) to run a flagged
        configuration anyway, e.g. a transient study of an absorbing
        chain evaluated through callable metrics.
    """

    def __init__(
        self,
        model: Union[PetriNet, SweepBackend],
        metrics: Sequence[Metric],
        options: ReachabilityOptions = ReachabilityOptions(),
        backend: str = "auto",
        n_workers: Optional[int] = None,
        method: str = "auto",
        tol: Optional[float] = None,
        max_iter: Optional[int] = None,
        preflight: bool = True,
    ) -> None:
        if not metrics:
            raise ValueError("at least one metric is required")
        if isinstance(model, PetriNet):
            self.model: SweepBackend = GSPNBackend(
                model,
                options,
                ctmc_backend=backend,
                method=method,
                tol=tol,
                max_iter=max_iter,
            )
        elif isinstance(model, SweepBackend):
            if method != "auto" or tol is not None or max_iter is not None:
                raise ValueError(
                    "method/tol/max_iter apply only when a PetriNet is "
                    "passed; configure the backend instance directly "
                    f"(got a {type(model).__name__})"
                )
            self.model = model
        else:
            raise TypeError(
                f"model must be a PetriNet or a SweepBackend, got "
                f"{type(model).__name__}"
            )
        # back-compat: the GSPN template solver used to be a public attribute
        self.solver = getattr(self.model, "solver", None)
        self.metrics = list(metrics)
        self.metric_names = [metric_name(m, i) for i, m in enumerate(self.metrics)]
        if len(set(self.metric_names)) != len(self.metric_names):
            raise ValueError(f"duplicate metric names: {self.metric_names}")
        self.backend = backend
        self.n_workers = n_workers
        self.preflight = preflight

    def run(
        self, grid: Union[SweepGrid, Iterable[Mapping[str, float]]]
    ) -> SweepResult:
        """Solve every grid point and tabulate the metrics."""
        if isinstance(grid, SweepGrid):
            axis_names = grid.names
            points = grid.points()
        else:
            points = [dict(p) for p in grid]
            axis_names = list(points[0]) if points else []
        if not points:
            raise ValueError("empty sweep grid")
        self.model.check_axes(axis_names)
        if self.preflight:
            with obs.span("sweep.preflight", points=len(points)):
                self._run_preflight(points)

        with obs.span("sweep.run", points=len(points)):
            values, errors = self._execute(axis_names, points)
        return SweepResult(
            axis_names=axis_names,
            metric_names=list(self.metric_names),
            points=[{k: float(v) for k, v in p.items()} for p in points],
            values=[dict(zip(self.metric_names, row)) for row in values],
            errors=errors,
            telemetry=obs.current_trace(),
        )

    def solve_point(self, point: Mapping[str, float]):
        """Solve a single grid point (for ad-hoc inspection)."""
        return self.model.solve(point)

    def _run_preflight(self, points: Sequence[Mapping[str, float]]) -> None:
        """Verify the configuration; abort on errors, log the rest.

        Runs in the base :meth:`run` — *before* ``_execute`` — so the
        distributed runner inherits the gate and a doomed sweep aborts
        before any fan-out (pool startup, worker handshakes, template
        shipping) happens.
        """
        from repro.verify import preflight_sweep, raise_on_errors

        report = preflight_sweep(self.model, points, self.metrics)
        for diagnostic in report.warnings:
            logger.warning("sweep preflight: %s", diagnostic.render())
        raise_on_errors(report)

    # ------------------------------------------------------------------ #
    # execution strategies (the distributed runner overrides _execute)
    # ------------------------------------------------------------------ #
    def _execute(
        self, axis_names: Sequence[str], points: Sequence[Mapping[str, float]]
    ) -> Tuple[List[List[float]], List[PointFailure]]:
        if self.n_workers and self.n_workers > 1 and len(points) > 1:
            return self._run_parallel(points)
        return self._run_serial(points)

    def _run_serial(
        self, points: Sequence[Mapping[str, float]]
    ) -> Tuple[List[List[float]], List[PointFailure]]:
        plan = build_plan(self.model, self.metrics, points)
        return SerialExecutor().run(plan, self.model, self.metrics, points)

    def _template_ships(self) -> bool:
        """Pre-flight: can the template reach workers (pool or wire)?

        Probed before paying for pool/coordinator startup so closures
        degrade deterministically on every start method; shared by the
        in-machine pool and the distributed runner.
        """
        try:
            pickle.dumps((self.model, self.metrics))
            return True
        except Exception as exc:
            logger.warning("sweep template is not picklable (%s)", exc)
            return False

    def _run_parallel(
        self, points: Sequence[Mapping[str, float]]
    ) -> Tuple[List[List[float]], List[PointFailure]]:
        assert self.n_workers is not None
        if not self._template_ships():
            logger.warning(
                "solving %d points serially instead", len(points)
            )
            return self._run_serial(points)
        workers = min(self.n_workers, len(points))
        plan = build_plan(
            self.model,
            self.metrics,
            points,
            n_partitions=CHUNKS_PER_WORKER * workers,
        )
        # ProcessPoolExecutor resolves through this module's namespace at
        # call time: the broken-pool tests monkeypatch it here.
        executor = PoolExecutor(
            workers, pool_cls=ProcessPoolExecutor, log=logger
        )
        return executor.run(plan, self.model, self.metrics, points)
