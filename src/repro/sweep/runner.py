"""Batched parameter sweeps over model backends.

:class:`SweepRunner` amortises the expensive, rate-independent half of a
model family across every point of a grid.  The family is described by a
:class:`~repro.sweep.backends.base.SweepBackend`: its template (reachability
graph, stage structure, sparsity pattern, symbolic LU analysis…) is built
once, and each grid point costs only a re-assembly plus the solve.  Three
backends ship (see :mod:`repro.sweep.backends`):

- ``gspn`` — exponential-only Petri nets via ``GSPNSolver`` rate rebinding
  (passing a :class:`~repro.petri.net.PetriNet` directly still works and
  wraps it in this backend);
- ``phase-type`` — the deterministic-delay CPU model, stage-expanded so
  Figure 4/5-style threshold/delay sweeps run batched;
- ``renewal`` — the exact closed form, for cross-checks.

Metrics are callables ``solution -> float`` or compact strings in the
backend's grammar — steady-state (``mean_tokens:<place>``,
``fraction:standby``, ``power``, …) or transient (``energy@5``,
``fraction:active@0.5``, ``time_to_threshold:0.01``); see
:mod:`repro.sweep.backends.base`.

**Preflight.**  Before solving anything, the runner verifies the sweep
configuration (:func:`repro.verify.preflight_sweep`): the chain structure
is classified from the already-built template (absorbing deadlocks and
fragmented stationary structure become named diagnostics instead of
``singular generator`` failures on every point), grid values are vetted,
and truncation monitoring is cross-checked.  Error-severity findings
abort in milliseconds with :class:`~repro.verify.PreflightError` —
before any point is solved and before any distributed fan-out; pass
``preflight=False`` to opt out.

**Failure isolation.**  A grid point whose *solve* raises a numerical
error (``ConvergenceError`` on a stiff corner, a singular chain at a
degenerate rate) does not abort the sweep: the point gets an all-NaN row
plus a :class:`~repro.sweep.results.PointFailure` record on the result,
and the remaining points keep solving — identically in the serial, pool,
and distributed paths.  Configuration errors (unknown axes, malformed
metric specs, unknown places) still raise immediately; they would fail
on every point.

**Fan-out.**  ``n_workers > 1`` distributes *contiguous, axis-ordered
chunks* of the grid over a process pool (the backend template ships to
each worker once via the pool initializer).  Contiguity keeps iterative
warm starts adjacent — each chunk starts cold
(:meth:`~repro.sweep.backends.base.SweepBackend.reset_point_state`) and
warm-starts within itself, so a GMRES start never comes from a far-away
grid point.  Results are ordered like, and (for the direct solvers)
bit-identical to, the serial path.  When the template cannot be pickled
(e.g. a metric closure) the runner logs a warning and falls back to
serial execution; if the pool itself breaks mid-run, the fallback
resumes serially *from the unfinished points only* instead of re-solving
the whole grid.  For sharding a grid across hosts, see
:mod:`repro.sweep.distributed`.
"""

from __future__ import annotations

import logging
import math
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import (
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro import obs
from repro.markov.ctmc import NumericalSolveError
from repro.petri.analysis import ReachabilityOptions
from repro.petri.net import PetriNet
from repro.sweep.backends import GSPNBackend, SweepBackend, evaluate_gspn_metric
from repro.sweep.backends.base import Metric, metric_name
from repro.sweep.grid import SweepGrid
from repro.sweep.results import PointFailure, SweepResult

__all__ = [
    "Metric",
    "SweepRunner",
    "contiguous_chunks",
    "evaluate_metric",
    "iter_point_rows",
    "metric_name",
    "solve_missing_rows",
    "solve_point_row",
]

logger = logging.getLogger(__name__)

#: Back-compat alias: the GSPN steady-state metric evaluator this module
#: historically exported.
evaluate_metric = evaluate_gspn_metric

#: Chunks handed out per pool worker: oversubscription for load balance
#: while each chunk stays one contiguous span of the axis-ordered grid.
CHUNKS_PER_WORKER = 4

#: Exception types treated as a *per-point solve failure* (NaN row + error
#: record).  ``ValueError`` covers singular/reducible chains surfacing
#: from the direct solvers (including ``numpy.linalg.LinAlgError``, a
#: ``ValueError`` subclass) and ``RuntimeError`` covers
#: ``ConvergenceError``; anything else (``KeyError`` for bad axes,
#: ``TypeError``…) is a configuration bug and propagates.
SOLVE_FAILURE_TYPES = (
    ValueError,
    ArithmeticError,
    RuntimeError,
)

#: Exception types treated as a per-point failure during *metric
#: evaluation* (GSPN backends solve their steady state lazily, at the
#: first steady metric).  Deliberately excludes plain ``ValueError``: a
#: malformed metric spec is a configuration error that would fail on
#: every point and must raise, whereas a lazily-triggered solve stall
#: (:class:`~repro.markov.ctmc.ConvergenceError` is a ``RuntimeError``),
#: a singular chain (:class:`~repro.markov.ctmc.NumericalSolveError`),
#: or a dense-factorisation failure (``numpy.linalg.LinAlgError``) is
#: point-local — the latter two are the only ``ValueError`` subclasses
#: caught here.
METRIC_FAILURE_TYPES = (
    ArithmeticError,
    RuntimeError,
    np.linalg.LinAlgError,
    NumericalSolveError,
)


def contiguous_chunks(n: int, n_chunks: int) -> List[Tuple[int, int]]:
    """Split ``range(n)`` into at most *n_chunks* contiguous spans.

    Returns ``(start, stop)`` pairs that cover ``range(n)`` in order,
    pairwise disjoint, with sizes differing by at most one.  Contiguity is
    the point: sweep grids enumerate row-major (last axis fastest), so a
    contiguous span of indices is a neighbourhood of the parameter grid
    and iterative warm starts stay adjacent within a chunk.

    >>> contiguous_chunks(10, 3)
    [(0, 4), (4, 7), (7, 10)]
    >>> contiguous_chunks(2, 8)
    [(0, 1), (1, 2)]
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if n == 0:
        return []
    n_chunks = max(1, min(n, n_chunks))
    base, extra = divmod(n, n_chunks)
    spans: List[Tuple[int, int]] = []
    start = 0
    for k in range(n_chunks):
        size = base + (1 if k < extra else 0)
        spans.append((start, start + size))
        start += size
    return spans


def solve_missing_rows(
    model: SweepBackend,
    metrics: Sequence[Metric],
    points: Sequence[Mapping[str, float]],
    missing: Iterable[int],
):
    """Serially solve *missing* indices, yielding ``(index, row, failure)``.

    The shared resume loop of the broken-pool fallback and the
    distributed runner's serial paths.  *missing* must be ascending; the
    warm start is reset whenever consecutive indices are not adjacent —
    completed work interleaves the gaps, and a warm start must never
    cross one.
    """
    previous: Optional[int] = None
    for index in missing:
        if previous is not None and index != previous + 1:
            model.reset_point_state()
        previous = index
        row, failure = solve_point_row(model, metrics, points[index], index)
        obs.incr("sweep.rows.completed")
        if failure is not None:
            obs.incr("sweep.rows.failed")
        yield (index, row, failure)


def solve_point_row(
    model: SweepBackend,
    metrics: Sequence[Metric],
    point: Mapping[str, float],
    index: int,
) -> Tuple[List[float], Optional[PointFailure]]:
    """Solve one grid point into a metric row, isolating numerical failures.

    The shared per-point plumbing of every execution path (serial, process
    pool, distributed workers).  Returns ``(row, failure)``: on success the
    metric values and ``None``; on a recoverable numerical failure (see
    :data:`SOLVE_FAILURE_TYPES` / :data:`METRIC_FAILURE_TYPES`) an all-NaN
    row plus the :class:`~repro.sweep.results.PointFailure` record.
    Configuration errors propagate.
    """
    nan_row = lambda: [math.nan] * len(metrics)  # noqa: E731
    with obs.span("sweep.point", index=index) as sp:
        with obs.span("sweep.solve"):
            try:
                solution = model.solve(point)
            except SOLVE_FAILURE_TYPES as exc:
                sp.set("stage", "solve")
                sp.set("error", type(exc).__name__)
                return nan_row(), PointFailure(
                    index=index,
                    point={k: float(v) for k, v in point.items()},
                    stage="solve",
                    error_type=type(exc).__name__,
                    message=str(exc),
                )
        return _metrics_row(model, metrics, point, index, solution, sp)


def _metrics_row(
    model: SweepBackend,
    metrics: Sequence[Metric],
    point: Mapping[str, float],
    index: int,
    solution,
    sp,
) -> Tuple[List[float], Optional[PointFailure]]:
    """Evaluate *metrics* on an already-solved point (shared by the
    pointwise and batched paths; *sp* is the open ``sweep.point`` span)."""
    nan_row = lambda: [math.nan] * len(metrics)  # noqa: E731
    row: List[float] = []
    with obs.span("sweep.metrics"):
        for i, m in enumerate(metrics):
            try:
                row.append(model.evaluate(solution, m))
            except METRIC_FAILURE_TYPES as exc:
                sp.set("stage", "metric")
                sp.set("error", type(exc).__name__)
                return nan_row(), PointFailure(
                    index=index,
                    point={k: float(v) for k, v in point.items()},
                    stage="metric",
                    error_type=type(exc).__name__,
                    message=str(exc),
                    metric=metric_name(m, i),
                )
    return row, None


def iter_point_rows(
    model: SweepBackend,
    metrics: Sequence[Metric],
    points: Sequence[Mapping[str, float]],
    start: int = 0,
):
    """Yield ``(index, row, failure)`` for *points*, batching when the
    backend can.

    The shared inner loop of the serial runner and the pool workers.  A
    batch-capable backend (``batch_capable`` — see
    :meth:`~repro.sweep.backends.base.SweepBackend.solve_batch`) gets the
    points in stacked batches of its preferred size, solved as one
    block-diagonal system each under a ``sweep.batch`` span; everything
    downstream is unchanged — one ``sweep.point`` span, one row, and
    per-point failure isolation per grid point, exactly as on the
    pointwise path.  Indices are offset by *start* (a pool chunk's base).
    """
    batch = (
        model.resolve_batch_size(len(points))
        if getattr(model, "batch_capable", False)
        else 1
    )
    if batch <= 1:
        for offset, point in enumerate(points):
            index = start + offset
            row, failure = solve_point_row(model, metrics, point, index)
            yield index, row, failure
        return
    nan_row = lambda: [math.nan] * len(metrics)  # noqa: E731
    for base in range(0, len(points), batch):
        span = points[base : base + batch]
        with obs.span(
            "sweep.batch", start=start + base, points=len(span)
        ):
            solutions = model.solve_batch(list(span))
        for offset, (point, solution) in enumerate(zip(span, solutions)):
            index = start + base + offset
            with obs.span("sweep.point", index=index) as sp:
                if isinstance(solution, Exception):
                    sp.set("stage", "solve")
                    sp.set("error", type(solution).__name__)
                    yield index, nan_row(), PointFailure(
                        index=index,
                        point={k: float(v) for k, v in point.items()},
                        stage="solve",
                        error_type=type(solution).__name__,
                        message=str(solution),
                    )
                    continue
                row, failure = _metrics_row(
                    model, metrics, point, index, solution, sp
                )
            yield index, row, failure


# -- process-pool plumbing: the template lands in each worker exactly once --
_WORKER_STATE: Optional[tuple] = None


def _init_worker(
    model: SweepBackend, metrics: Sequence[Metric], telemetry: bool = False
) -> None:
    global _WORKER_STATE
    _WORKER_STATE = (model, list(metrics))
    if telemetry:
        # the parent runs with tracing on: give this worker its own trace
        # so chunk results can ship span segments + counter deltas back
        obs.activate(obs.Trace("sweep-worker"))


def _solve_chunk(
    start: int, chunk_points: Sequence[Mapping[str, float]]
) -> Tuple[
    int, List[List[float]], List[PointFailure], Optional[Dict[str, object]]
]:
    """Solve one contiguous chunk inside a pool worker.

    The warm start is reset at the chunk boundary — the previous chunk
    this worker solved may be a far-away span of the grid — then carried
    point-to-point within the chunk.

    The fourth element is the chunk's telemetry segment (spans recorded
    during the chunk + counter deltas) when the worker traces, else
    ``None``; the parent merges it into the run-level trace.
    """
    assert _WORKER_STATE is not None, "worker used before initialisation"
    model, metrics = _WORKER_STATE
    model.reset_point_state()
    trace = obs.current_trace()
    mark = trace.mark() if trace is not None else 0
    rows: List[List[float]] = []
    errors: List[PointFailure] = []
    for _, row, failure in iter_point_rows(
        model, metrics, chunk_points, start
    ):
        rows.append(row)
        if failure is not None:
            errors.append(failure)
    segment: Optional[Dict[str, object]] = None
    if trace is not None:
        segment = {
            "spans": trace.slice_spans(mark),
            "counters": trace.drain_counters(),
        }
    return start, rows, errors, segment


class SweepRunner:
    """Solve one model family across a parameter grid.

    Parameters
    ----------
    model:
        A :class:`~repro.sweep.backends.base.SweepBackend`, or an
        exponential-only :class:`~repro.petri.net.PetriNet` (wrapped in a
        :class:`~repro.sweep.backends.GSPNBackend`, preserving the
        original net-first API).
    metrics:
        Metric specs (strings or callables); one result column each.
    options:
        Reachability exploration limits (GSPN nets only; ignored when a
        backend instance is passed).
    backend:
        CTMC linear-algebra backend for GSPN solves (``"auto"`` default;
        ignored when a backend instance is passed).
    method, tol, max_iter:
        Steady-state solver choice for GSPN solves —
        ``"auto"``/``"lu"``/``"gmres"``/``"power"`` plus the iterative
        tolerance and iteration budget (see
        :meth:`repro.markov.ctmc.CTMC.steady_state`).  Only legal when
        *model* is a net; a backend instance carries its own solver
        configuration, so passing these with one raises ``ValueError``
        instead of silently ignoring them.
    n_workers:
        ``None``/``0``/``1`` solves serially; ``>= 2`` fans contiguous
        chunks of points out over a process pool of that size.
    preflight:
        Verify the sweep configuration before solving anything (default
        ``True``): :func:`repro.verify.preflight_sweep` classifies the
        chain (absorbing deadlocks, fragmented stationary structure —
        free, the template already exists), vets grid values, and checks
        truncation monitoring.  Error-severity findings abort the run
        with :class:`~repro.verify.PreflightError` in milliseconds —
        before any point is solved and, in the distributed runner,
        before any worker receives a template; warnings are logged.
        Pass ``False`` (CLI: ``--no-preflight``) to run a flagged
        configuration anyway, e.g. a transient study of an absorbing
        chain evaluated through callable metrics.
    """

    def __init__(
        self,
        model: Union[PetriNet, SweepBackend],
        metrics: Sequence[Metric],
        options: ReachabilityOptions = ReachabilityOptions(),
        backend: str = "auto",
        n_workers: Optional[int] = None,
        method: str = "auto",
        tol: Optional[float] = None,
        max_iter: Optional[int] = None,
        preflight: bool = True,
    ) -> None:
        if not metrics:
            raise ValueError("at least one metric is required")
        if isinstance(model, PetriNet):
            self.model: SweepBackend = GSPNBackend(
                model,
                options,
                ctmc_backend=backend,
                method=method,
                tol=tol,
                max_iter=max_iter,
            )
        elif isinstance(model, SweepBackend):
            if method != "auto" or tol is not None or max_iter is not None:
                raise ValueError(
                    "method/tol/max_iter apply only when a PetriNet is "
                    "passed; configure the backend instance directly "
                    f"(got a {type(model).__name__})"
                )
            self.model = model
        else:
            raise TypeError(
                f"model must be a PetriNet or a SweepBackend, got "
                f"{type(model).__name__}"
            )
        # back-compat: the GSPN template solver used to be a public attribute
        self.solver = getattr(self.model, "solver", None)
        self.metrics = list(metrics)
        self.metric_names = [metric_name(m, i) for i, m in enumerate(self.metrics)]
        if len(set(self.metric_names)) != len(self.metric_names):
            raise ValueError(f"duplicate metric names: {self.metric_names}")
        self.backend = backend
        self.n_workers = n_workers
        self.preflight = preflight

    def run(
        self, grid: Union[SweepGrid, Iterable[Mapping[str, float]]]
    ) -> SweepResult:
        """Solve every grid point and tabulate the metrics."""
        if isinstance(grid, SweepGrid):
            axis_names = grid.names
            points = grid.points()
        else:
            points = [dict(p) for p in grid]
            axis_names = list(points[0]) if points else []
        if not points:
            raise ValueError("empty sweep grid")
        self.model.check_axes(axis_names)
        if self.preflight:
            with obs.span("sweep.preflight", points=len(points)):
                self._run_preflight(points)

        with obs.span("sweep.run", points=len(points)):
            values, errors = self._execute(axis_names, points)
        return SweepResult(
            axis_names=axis_names,
            metric_names=list(self.metric_names),
            points=[{k: float(v) for k, v in p.items()} for p in points],
            values=[dict(zip(self.metric_names, row)) for row in values],
            errors=errors,
            telemetry=obs.current_trace(),
        )

    def solve_point(self, point: Mapping[str, float]):
        """Solve a single grid point (for ad-hoc inspection)."""
        return self.model.solve(point)

    def _run_preflight(self, points: Sequence[Mapping[str, float]]) -> None:
        """Verify the configuration; abort on errors, log the rest.

        Runs in the base :meth:`run` — *before* ``_execute`` — so the
        distributed runner inherits the gate and a doomed sweep aborts
        before any fan-out (pool startup, worker handshakes, template
        shipping) happens.
        """
        from repro.verify import preflight_sweep, raise_on_errors

        report = preflight_sweep(self.model, points, self.metrics)
        for diagnostic in report.warnings:
            logger.warning("sweep preflight: %s", diagnostic.render())
        raise_on_errors(report)

    # ------------------------------------------------------------------ #
    # execution strategies (the distributed runner overrides _execute)
    # ------------------------------------------------------------------ #
    def _execute(
        self, axis_names: Sequence[str], points: Sequence[Mapping[str, float]]
    ) -> Tuple[List[List[float]], List[PointFailure]]:
        if self.n_workers and self.n_workers > 1 and len(points) > 1:
            return self._run_parallel(points)
        return self._run_serial(points)

    def _run_serial(
        self, points: Sequence[Mapping[str, float]]
    ) -> Tuple[List[List[float]], List[PointFailure]]:
        rows: List[List[float]] = []
        errors: List[PointFailure] = []
        for _, row, failure in iter_point_rows(
            self.model, self.metrics, points
        ):
            rows.append(row)
            obs.incr("sweep.rows.completed")
            if failure is not None:
                errors.append(failure)
                obs.incr("sweep.rows.failed")
        return rows, errors

    def _template_ships(self) -> bool:
        """Pre-flight: can the template reach workers (pool or wire)?

        Probed before paying for pool/coordinator startup so closures
        degrade deterministically on every start method; shared by the
        in-machine pool and the distributed runner.
        """
        try:
            pickle.dumps((self.model, self.metrics))
            return True
        except Exception as exc:
            logger.warning("sweep template is not picklable (%s)", exc)
            return False

    def _run_parallel(
        self, points: Sequence[Mapping[str, float]]
    ) -> Tuple[List[List[float]], List[PointFailure]]:
        assert self.n_workers is not None
        if not self._template_ships():
            logger.warning(
                "solving %d points serially instead", len(points)
            )
            return self._run_serial(points)
        workers = min(self.n_workers, len(points))
        spans = contiguous_chunks(len(points), CHUNKS_PER_WORKER * workers)
        rows: List[Optional[List[float]]] = [None] * len(points)
        error_map: Dict[int, PointFailure] = {}
        trace = obs.current_trace()
        harvested: set = set()

        def harvest(future, result) -> None:
            if id(future) in harvested:
                return  # the broken-pool sweep below re-visits futures
            harvested.add(id(future))
            start, chunk_rows, chunk_errors, segment = result
            rows[start : start + len(chunk_rows)] = chunk_rows
            for failure in chunk_errors:
                error_map[failure.index] = failure
            if trace is not None and segment is not None:
                trace.merge_segment(**segment)
            obs.incr("sweep.rows.completed", len(chunk_rows))
            if chunk_errors:
                obs.incr("sweep.rows.failed", len(chunk_errors))

        futures = []
        try:
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_worker,
                initargs=(self.model, self.metrics, obs.enabled()),
            ) as pool:
                futures = [
                    pool.submit(_solve_chunk, start, list(points[start:stop]))
                    for start, stop in spans
                ]
                for future in futures:
                    harvest(future, future.result())
        except (BrokenProcessPool, pickle.PicklingError, OSError) as exc:
            # the pool broke or could not ship the template.  Keep every
            # chunk that did complete and resume serially from the
            # unfinished points only — on a mostly-done grid the fallback
            # costs the remainder, not a full re-solve.  Genuine
            # configuration errors propagate with their own traceback.
            for future in futures:
                if (
                    future.done()
                    and not future.cancelled()
                    and future.exception() is None
                ):
                    harvest(future, future.result())
            missing = [i for i, row in enumerate(rows) if row is None]
            logger.warning(
                "sweep process pool failed (%s); resuming %d of %d points "
                "serially",
                exc,
                len(missing),
                len(points),
            )
            for index, row, failure in solve_missing_rows(
                self.model, self.metrics, points, missing
            ):
                rows[index] = row
                if failure is not None:
                    error_map[failure.index] = failure
        assert all(row is not None for row in rows)
        return (
            [list(row) for row in rows],  # type: ignore[union-attr]
            [error_map[i] for i in sorted(error_map)],
        )
