"""Batched parameter sweeps over GSPNs.

:class:`SweepRunner` amortises the expensive, rate-independent half of the
GSPN→CTMC reduction (reachability exploration, vanishing-marking
elimination, sparsity pattern) across every point of a rate grid: the
:class:`~repro.petri.ctmc_export.GSPNSolver` template is built once, and
each grid point costs only a sparse re-assembly plus the steady-state
solve.  For a P-point sweep over an n-state net this replaces P graph
explorations with one — the speedup :mod:`benchmarks.bench_sweep`
measures.

Metrics are either callables ``GSPNSolution -> float`` or compact strings::

    mean_tokens:<place>             steady-state mean token count
    probability_positive:<place>    P[place non-empty]
    throughput:<transition>         firing rate of an exponential transition

Optional multiprocessing fan-out (``n_workers > 1``) distributes points
over a process pool; the template is shipped to each worker once via the
pool initializer.  Results are identical to, and ordered like, the serial
path; on platforms where the template cannot be pickled the runner falls
back to serial execution.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.petri.analysis import ReachabilityOptions
from repro.petri.ctmc_export import GSPNSolution, GSPNSolver
from repro.petri.net import PetriNet
from repro.sweep.grid import SweepGrid
from repro.sweep.results import SweepResult

__all__ = ["Metric", "SweepRunner", "evaluate_metric", "metric_name"]

Metric = Union[str, Callable[[GSPNSolution], float]]

_METRIC_KINDS = ("mean_tokens", "probability_positive", "throughput")


def metric_name(metric: Metric, index: int = 0) -> str:
    """Column name for *metric* in result tables."""
    if isinstance(metric, str):
        return metric
    return getattr(metric, "__name__", None) or f"metric{index}"


def evaluate_metric(solution: GSPNSolution, metric: Metric) -> float:
    """Evaluate one metric spec against a solved GSPN."""
    if callable(metric):
        return float(metric(solution))
    kind, sep, arg = metric.partition(":")
    if not sep or kind not in _METRIC_KINDS or not arg:
        raise ValueError(
            f"metric spec must be '<kind>:<name>' with kind in "
            f"{_METRIC_KINDS}, got {metric!r}"
        )
    return float(getattr(solution, kind)(arg))


# -- process-pool plumbing: the template lands in each worker exactly once --
_WORKER_STATE: Optional[tuple] = None


def _init_worker(solver: GSPNSolver, metrics: Sequence[Metric], backend: str) -> None:
    global _WORKER_STATE
    _WORKER_STATE = (solver, list(metrics), backend)


def _solve_point(point: Mapping[str, float]) -> List[float]:
    assert _WORKER_STATE is not None, "worker used before initialisation"
    solver, metrics, backend = _WORKER_STATE
    solution = solver.solve(rates=point, backend=backend)
    return [evaluate_metric(solution, m) for m in metrics]


class SweepRunner:
    """Solve one GSPN across a grid of exponential rates.

    Parameters
    ----------
    net:
        Exponential-only Petri net (explored once, in the constructor).
    metrics:
        Metric specs (strings or callables); one result column each.
    options:
        Reachability exploration limits.
    backend:
        CTMC backend forwarded to every solve (``"auto"`` by default).
    n_workers:
        ``None``/``0``/``1`` solves serially; ``>= 2`` fans points out over
        a process pool of that size.
    """

    def __init__(
        self,
        net: PetriNet,
        metrics: Sequence[Metric],
        options: ReachabilityOptions = ReachabilityOptions(),
        backend: str = "auto",
        n_workers: Optional[int] = None,
    ) -> None:
        if not metrics:
            raise ValueError("at least one metric is required")
        self.solver = GSPNSolver(net, options)
        self.metrics = list(metrics)
        self.metric_names = [metric_name(m, i) for i, m in enumerate(self.metrics)]
        if len(set(self.metric_names)) != len(self.metric_names):
            raise ValueError(f"duplicate metric names: {self.metric_names}")
        self.backend = backend
        self.n_workers = n_workers

    def _check_axes(self, names: Iterable[str]) -> None:
        known = set(self.solver.exponential_transitions)
        unknown = [n for n in names if n not in known]
        if unknown:
            raise KeyError(
                f"grid axes {unknown} are not exponential transitions of the "
                f"net (have: {sorted(known)})"
            )

    def run(
        self, grid: Union[SweepGrid, Iterable[Mapping[str, float]]]
    ) -> SweepResult:
        """Solve every grid point and tabulate the metrics."""
        if isinstance(grid, SweepGrid):
            axis_names = grid.names
            points = grid.points()
        else:
            points = [dict(p) for p in grid]
            axis_names = list(points[0]) if points else []
        if not points:
            raise ValueError("empty sweep grid")
        self._check_axes(axis_names)

        if self.n_workers and self.n_workers > 1 and len(points) > 1:
            values = self._run_parallel(points)
        else:
            values = self._run_serial(points)
        return SweepResult(
            axis_names=axis_names,
            metric_names=list(self.metric_names),
            points=[{k: float(v) for k, v in p.items()} for p in points],
            values=[dict(zip(self.metric_names, row)) for row in values],
        )

    def solve_point(self, point: Mapping[str, float]) -> GSPNSolution:
        """Solve a single grid point (for ad-hoc inspection)."""
        return self.solver.solve(rates=point, backend=self.backend)

    def _run_serial(self, points: Sequence[Mapping[str, float]]) -> List[List[float]]:
        rows: List[List[float]] = []
        for point in points:
            solution = self.solver.solve(rates=point, backend=self.backend)
            rows.append([evaluate_metric(solution, m) for m in self.metrics])
        return rows

    def _run_parallel(self, points: Sequence[Mapping[str, float]]) -> List[List[float]]:
        assert self.n_workers is not None
        workers = min(self.n_workers, len(points))
        chunk = max(1, len(points) // (4 * workers))
        try:
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_worker,
                initargs=(self.solver, self.metrics, self.backend),
            ) as pool:
                return [list(row) for row in pool.map(
                    _solve_point, points, chunksize=chunk
                )]
        except (BrokenProcessPool, pickle.PicklingError, OSError):
            # the pool could not start or ship the template (e.g. unpicklable
            # guards/metrics under a spawn start method) — degrade to serial;
            # genuine per-point errors propagate with their own traceback
            return self._run_serial(points)
