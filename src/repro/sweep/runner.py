"""Batched parameter sweeps over model backends.

:class:`SweepRunner` amortises the expensive, rate-independent half of a
model family across every point of a grid.  The family is described by a
:class:`~repro.sweep.backends.base.SweepBackend`: its template (reachability
graph, stage structure, sparsity pattern, symbolic LU analysis…) is built
once, and each grid point costs only a re-assembly plus the solve.  Three
backends ship (see :mod:`repro.sweep.backends`):

- ``gspn`` — exponential-only Petri nets via ``GSPNSolver`` rate rebinding
  (passing a :class:`~repro.petri.net.PetriNet` directly still works and
  wraps it in this backend);
- ``phase-type`` — the deterministic-delay CPU model, stage-expanded so
  Figure 4/5-style threshold/delay sweeps run batched;
- ``renewal`` — the exact closed form, for cross-checks.

Metrics are callables ``solution -> float`` or compact strings in the
backend's grammar — steady-state (``mean_tokens:<place>``,
``fraction:standby``, ``power``, …) or transient (``energy@5``,
``fraction:active@0.5``, ``time_to_threshold:0.01``); see
:mod:`repro.sweep.backends.base`.

Optional multiprocessing fan-out (``n_workers > 1``) distributes points
over a process pool; the backend template is shipped to each worker once
via the pool initializer.  Results are identical to, and ordered like, the
serial path.  When the template cannot be pickled (e.g. a metric closure)
the runner logs a warning and falls back to serial execution instead of
crashing the pool.
"""

from __future__ import annotations

import logging
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Iterable, List, Mapping, Optional, Sequence, Union

from repro.petri.analysis import ReachabilityOptions
from repro.petri.net import PetriNet
from repro.sweep.backends import GSPNBackend, SweepBackend, evaluate_gspn_metric
from repro.sweep.backends.base import Metric, metric_name
from repro.sweep.grid import SweepGrid
from repro.sweep.results import SweepResult

__all__ = ["Metric", "SweepRunner", "evaluate_metric", "metric_name"]

logger = logging.getLogger(__name__)

#: Back-compat alias: the GSPN steady-state metric evaluator this module
#: historically exported.
evaluate_metric = evaluate_gspn_metric


# -- process-pool plumbing: the template lands in each worker exactly once --
_WORKER_STATE: Optional[tuple] = None


def _init_worker(model: SweepBackend, metrics: Sequence[Metric]) -> None:
    global _WORKER_STATE
    _WORKER_STATE = (model, list(metrics))


def _solve_point(point: Mapping[str, float]) -> List[float]:
    assert _WORKER_STATE is not None, "worker used before initialisation"
    model, metrics = _WORKER_STATE
    solution = model.solve(point)
    return [model.evaluate(solution, m) for m in metrics]


class SweepRunner:
    """Solve one model family across a parameter grid.

    Parameters
    ----------
    model:
        A :class:`~repro.sweep.backends.base.SweepBackend`, or an
        exponential-only :class:`~repro.petri.net.PetriNet` (wrapped in a
        :class:`~repro.sweep.backends.GSPNBackend`, preserving the
        original net-first API).
    metrics:
        Metric specs (strings or callables); one result column each.
    options:
        Reachability exploration limits (GSPN nets only; ignored when a
        backend instance is passed).
    backend:
        CTMC linear-algebra backend for GSPN solves (``"auto"`` default;
        ignored when a backend instance is passed).
    method, tol, max_iter:
        Steady-state solver choice for GSPN solves —
        ``"auto"``/``"lu"``/``"gmres"``/``"power"`` plus the iterative
        tolerance and iteration budget (see
        :meth:`repro.markov.ctmc.CTMC.steady_state`).  Only legal when
        *model* is a net; a backend instance carries its own solver
        configuration, so passing these with one raises ``ValueError``
        instead of silently ignoring them.
    n_workers:
        ``None``/``0``/``1`` solves serially; ``>= 2`` fans points out over
        a process pool of that size.
    """

    def __init__(
        self,
        model: Union[PetriNet, SweepBackend],
        metrics: Sequence[Metric],
        options: ReachabilityOptions = ReachabilityOptions(),
        backend: str = "auto",
        n_workers: Optional[int] = None,
        method: str = "auto",
        tol: Optional[float] = None,
        max_iter: Optional[int] = None,
    ) -> None:
        if not metrics:
            raise ValueError("at least one metric is required")
        if isinstance(model, PetriNet):
            self.model: SweepBackend = GSPNBackend(
                model,
                options,
                ctmc_backend=backend,
                method=method,
                tol=tol,
                max_iter=max_iter,
            )
        elif isinstance(model, SweepBackend):
            if method != "auto" or tol is not None or max_iter is not None:
                raise ValueError(
                    "method/tol/max_iter apply only when a PetriNet is "
                    "passed; configure the backend instance directly "
                    f"(got a {type(model).__name__})"
                )
            self.model = model
        else:
            raise TypeError(
                f"model must be a PetriNet or a SweepBackend, got "
                f"{type(model).__name__}"
            )
        # back-compat: the GSPN template solver used to be a public attribute
        self.solver = getattr(self.model, "solver", None)
        self.metrics = list(metrics)
        self.metric_names = [metric_name(m, i) for i, m in enumerate(self.metrics)]
        if len(set(self.metric_names)) != len(self.metric_names):
            raise ValueError(f"duplicate metric names: {self.metric_names}")
        self.backend = backend
        self.n_workers = n_workers

    def run(
        self, grid: Union[SweepGrid, Iterable[Mapping[str, float]]]
    ) -> SweepResult:
        """Solve every grid point and tabulate the metrics."""
        if isinstance(grid, SweepGrid):
            axis_names = grid.names
            points = grid.points()
        else:
            points = [dict(p) for p in grid]
            axis_names = list(points[0]) if points else []
        if not points:
            raise ValueError("empty sweep grid")
        self.model.check_axes(axis_names)

        if self.n_workers and self.n_workers > 1 and len(points) > 1:
            values = self._run_parallel(points)
        else:
            values = self._run_serial(points)
        return SweepResult(
            axis_names=axis_names,
            metric_names=list(self.metric_names),
            points=[{k: float(v) for k, v in p.items()} for p in points],
            values=[dict(zip(self.metric_names, row)) for row in values],
        )

    def solve_point(self, point: Mapping[str, float]):
        """Solve a single grid point (for ad-hoc inspection)."""
        return self.model.solve(point)

    def _run_serial(self, points: Sequence[Mapping[str, float]]) -> List[List[float]]:
        rows: List[List[float]] = []
        for point in points:
            solution = self.model.solve(point)
            rows.append([self.model.evaluate(solution, m) for m in self.metrics])
        return rows

    def _run_parallel(self, points: Sequence[Mapping[str, float]]) -> List[List[float]]:
        assert self.n_workers is not None
        try:
            # pre-flight: the pool initializer must be able to ship the
            # template; probe before paying for pool startup so closures
            # degrade deterministically on every start method
            pickle.dumps((self.model, self.metrics))
        except Exception as exc:
            logger.warning(
                "sweep template is not picklable (%s); solving %d points "
                "serially instead",
                exc,
                len(points),
            )
            return self._run_serial(points)
        workers = min(self.n_workers, len(points))
        chunk = max(1, len(points) // (4 * workers))
        try:
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_worker,
                initargs=(self.model, self.metrics),
            ) as pool:
                return [list(row) for row in pool.map(
                    _solve_point, points, chunksize=chunk
                )]
        except (BrokenProcessPool, pickle.PicklingError, OSError) as exc:
            # the pool could not start or ship the template — degrade to
            # serial; genuine per-point errors propagate with their own
            # traceback
            logger.warning(
                "sweep process pool failed (%s); solving %d points serially "
                "instead",
                exc,
                len(points),
            )
            return self._run_serial(points)
