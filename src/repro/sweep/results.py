"""Sweep result tables.

A :class:`SweepResult` is a small column-oriented table: one row per grid
point, axis columns first, then one column per metric.  It renders as the
repo's usual ASCII table, exports CSV, and supports simple queries
(``column``, ``best``) so experiments can post-process sweeps without a
dataframe dependency.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from repro.experiments.reporting import format_table

__all__ = ["SweepResult"]


@dataclass
class SweepResult:
    """One solved sweep: grid points plus metric values, row-aligned."""

    axis_names: List[str]
    metric_names: List[str]
    points: List[Dict[str, float]]
    values: List[Dict[str, float]]

    def __post_init__(self) -> None:
        if len(self.points) != len(self.values):
            raise ValueError("points and values must have the same length")

    def __len__(self) -> int:
        return len(self.points)

    @property
    def columns(self) -> List[str]:
        return self.axis_names + self.metric_names

    def rows(self) -> List[Dict[str, float]]:
        """Merged ``{axis: value, metric: value}`` dicts, one per point."""
        return [{**p, **v} for p, v in zip(self.points, self.values)]

    def column(self, name: str) -> np.ndarray:
        """One axis or metric column as a float array."""
        if name in self.axis_names:
            return np.array([p[name] for p in self.points])
        if name in self.metric_names:
            return np.array([v[name] for v in self.values])
        raise KeyError(f"unknown column {name!r} (have {self.columns})")

    def best(self, metric: str, minimize: bool = True) -> Dict[str, float]:
        """The row optimising *metric* (ties broken by enumeration order)."""
        col = self.column(metric)
        if metric not in self.metric_names:
            raise KeyError(f"{metric!r} is not a metric column")
        idx = int(np.argmin(col) if minimize else np.argmax(col))
        return self.rows()[idx]

    def render(self, title: str = "", float_fmt: str = "{:.6g}") -> str:
        """ASCII table of the whole sweep."""
        rows = [
            [row[c] for c in self.columns] for row in self.rows()
        ]
        return format_table(self.columns, rows, title=title, float_fmt=float_fmt)

    def write_csv(self, path: Union[str, Path]) -> Path:
        """Write the table to *path* (or ``<path>/sweep.csv`` if a directory)."""
        path = Path(path)
        if path.is_dir():
            path = path / "sweep.csv"
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(self.columns)
            for row in self.rows():
                writer.writerow([repr(float(row[c])) for c in self.columns])
        return path
