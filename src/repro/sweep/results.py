"""Sweep result tables.

A :class:`SweepResult` is a small column-oriented table: one row per grid
point, axis columns first, then one column per metric.  It renders as the
repo's usual ASCII table, exports CSV, and supports simple queries
(``column``, ``best``) so experiments can post-process sweeps without a
dataframe dependency.

Grid points whose solve failed (a stiff corner stalling GMRES, a
reducible chain at a degenerate rate) keep their row — every metric cell
is NaN — and carry a :class:`PointFailure` record in
:attr:`SweepResult.errors`, so one bad point never hides the rest of the
grid.  :meth:`SweepResult.assemble` builds a table from *partial* rows
(an interrupted distributed sweep, a checkpoint), NaN-filling whatever is
missing.
"""

from __future__ import annotations

import csv
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.experiments.reporting import format_table

__all__ = ["PointFailure", "SweepResult"]


@dataclass(frozen=True)
class PointFailure:
    """One grid point that produced a NaN row instead of metric values.

    Attributes
    ----------
    index : int
        Row index of the point in the sweep's enumeration order.
    point : dict
        The axis values of the failed point.
    stage : str
        Where the failure happened: ``"solve"`` (the model solve raised),
        ``"metric"`` (a metric evaluation raised), ``"worker"`` (a
        distributed worker died on this point repeatedly), or
        ``"merge"`` (the row was simply never produced).
    error_type : str
        Exception class name (e.g. ``"ConvergenceError"``).
    message : str
        The exception message.
    metric : str, optional
        The metric column being evaluated, for ``stage == "metric"``.
    """

    index: int
    point: Dict[str, float]
    stage: str
    error_type: str
    message: str
    metric: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly form (used by the checkpoint file)."""
        d: Dict[str, object] = {
            "index": self.index,
            "point": dict(self.point),
            "stage": self.stage,
            "error_type": self.error_type,
            "message": self.message,
        }
        if self.metric is not None:
            d["metric"] = self.metric
        return d

    @classmethod
    def from_dict(cls, d: Mapping[str, object]) -> "PointFailure":
        return cls(
            index=int(d["index"]),
            point={k: float(v) for k, v in dict(d["point"]).items()},
            stage=str(d["stage"]),
            error_type=str(d["error_type"]),
            message=str(d["message"]),
            metric=str(d["metric"]) if d.get("metric") is not None else None,
        )


@dataclass
class SweepResult:
    """One solved sweep: grid points plus metric values, row-aligned."""

    axis_names: List[str]
    metric_names: List[str]
    points: List[Dict[str, float]]
    values: List[Dict[str, float]]
    errors: List[PointFailure] = field(default_factory=list)
    #: The run-level :class:`repro.obs.Trace` when the sweep executed with
    #: telemetry active (serial spans recorded in-process; pool/distributed
    #: worker segments merged in), else ``None``.  Excluded from equality:
    #: two sweeps of the same grid are the same *result* however long each
    #: point took.
    telemetry: Optional[object] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if len(self.points) != len(self.values):
            raise ValueError("points and values must have the same length")
        for e in self.errors:
            if not 0 <= e.index < len(self.points):
                raise ValueError(
                    f"error record index {e.index} outside the table "
                    f"(have {len(self.points)} rows)"
                )

    def __len__(self) -> int:
        return len(self.points)

    @property
    def columns(self) -> List[str]:
        return self.axis_names + self.metric_names

    @property
    def n_failed(self) -> int:
        """Number of points that produced an error record (NaN rows)."""
        return len(self.errors)

    def failed_indices(self) -> List[int]:
        """Row indices with an error record, ascending."""
        return sorted(e.index for e in self.errors)

    def rows(self) -> List[Dict[str, float]]:
        """Merged ``{axis: value, metric: value}`` dicts, one per point."""
        return [{**p, **v} for p, v in zip(self.points, self.values)]

    def column(self, name: str) -> np.ndarray:
        """One axis or metric column as a float array (NaN where failed)."""
        if name in self.axis_names:
            return np.array([p[name] for p in self.points])
        if name in self.metric_names:
            return np.array([v[name] for v in self.values])
        raise KeyError(f"unknown column {name!r} (have {self.columns})")

    def best(self, metric: str, minimize: bool = True) -> Dict[str, float]:
        """The row optimising *metric* (ties broken by enumeration order).

        NaN rows (failed points) never win: the argmin/argmax ignores
        them.
        """
        col = self.column(metric)
        if metric not in self.metric_names:
            raise KeyError(f"{metric!r} is not a metric column")
        if np.all(np.isnan(col)):
            raise ValueError(f"every {metric!r} value is NaN (all points failed)")
        idx = int(np.nanargmin(col) if minimize else np.nanargmax(col))
        return self.rows()[idx]

    @classmethod
    def assemble(
        cls,
        axis_names: Sequence[str],
        metric_names: Sequence[str],
        points: Sequence[Mapping[str, float]],
        rows: Mapping[int, Sequence[float]],
        errors: Optional[Mapping[int, PointFailure]] = None,
    ) -> "SweepResult":
        """Merge *partial* rows into a full, enumeration-ordered table.

        *rows* maps point index to the metric values of that row (in
        ``metric_names`` order); any index without a row gets all-NaN
        cells and — unless *errors* already carries a record for it — a
        ``stage="merge"`` :class:`PointFailure` marking it unproduced.
        Utility for inspecting incomplete sweeps — e.g. the rows a
        :class:`~repro.sweep.distributed.checkpoint.SweepCheckpoint`
        journalled before an interruption; with every index present it
        reduces to the plain constructor.
        """
        metric_names = list(metric_names)
        err_map: Dict[int, PointFailure] = dict(errors or {})
        values: List[Dict[str, float]] = []
        for i, p in enumerate(points):
            row = rows.get(i)
            if row is None:
                row = [math.nan] * len(metric_names)
                err_map.setdefault(
                    i,
                    PointFailure(
                        index=i,
                        point={k: float(v) for k, v in p.items()},
                        stage="merge",
                        error_type="MissingRow",
                        message="no result row was produced for this point",
                    ),
                )
            elif len(row) != len(metric_names):
                raise ValueError(
                    f"row {i} has {len(row)} values for "
                    f"{len(metric_names)} metrics"
                )
            values.append(
                {m: float(v) for m, v in zip(metric_names, row)}
            )
        return cls(
            axis_names=list(axis_names),
            metric_names=metric_names,
            points=[{k: float(v) for k, v in p.items()} for p in points],
            values=values,
            errors=[err_map[i] for i in sorted(err_map)],
        )

    def render(self, title: str = "", float_fmt: str = "{:.6g}") -> str:
        """ASCII table of the whole sweep (plus a failed-points footer)."""
        rows = [
            [row[c] for c in self.columns] for row in self.rows()
        ]
        text = format_table(self.columns, rows, title=title, float_fmt=float_fmt)
        if self.errors:
            notes = "\n".join(
                f"  row {e.index}: [{e.stage}] {e.error_type}: {e.message}"
                for e in self.errors
            )
            text += (
                f"\n{len(self.errors)} of {len(self)} point(s) failed "
                f"(NaN rows):\n{notes}"
            )
        return text

    def write_csv(self, path: Union[str, Path]) -> Path:
        """Write the table to *path* (or ``<path>/sweep.csv`` if a directory)."""
        path = Path(path)
        if path.is_dir():
            path = path / "sweep.csv"
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(self.columns)
            for row in self.rows():
                writer.writerow([repr(float(row[c])) for c in self.columns])
        return path
