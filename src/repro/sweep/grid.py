"""Parameter grids for rate sweeps.

A :class:`SweepGrid` is a cartesian product of named axes, each axis a
sequence of exponential-transition rates.  Points enumerate in row-major
order (last axis fastest), deterministically, so sweep results are stable
across runs and across serial/parallel execution.

Axes can be built programmatically (``SweepGrid({"AR": [0.5, 1.0]})``) or
parsed from compact CLI specs::

    AR=0.1:2.0:10      ten linearly spaced points in [0.1, 2.0]
    AR=0.1:10:5:log    five logarithmically spaced points in [0.1, 10]
    AR=0.5,1,2         an explicit list
    AR=1.5             a single pinned value
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Mapping, Sequence, Tuple

import numpy as np

__all__ = ["SweepGrid", "parse_axis"]


def parse_axis(spec: str) -> Tuple[str, Tuple[float, ...]]:
    """Parse one ``NAME=VALUES`` axis spec (see module docstring).

    Malformed specs raise ``ValueError`` naming the axis and the exact
    token that failed, so CLI typos read as diagnoses, not tracebacks.
    """
    name, sep, body = spec.partition("=")
    name = name.strip()
    body = body.strip()
    if not sep or not name or not body:
        raise ValueError(f"axis spec must look like NAME=VALUES, got {spec!r}")
    if "," in body:
        values_list = []
        for token in body.split(","):
            token = token.strip()
            try:
                values_list.append(float(token))
            except ValueError:
                raise ValueError(
                    f"axis {name!r}: cannot parse list value {token!r} "
                    f"in {body!r}"
                ) from None
        return name, tuple(values_list)
    if ":" in body:
        parts = body.split(":")
        scale = "lin"
        if parts[-1] in ("log", "lin"):
            scale = parts[-1]
            parts = parts[:-1]
        if len(parts) != 3:
            raise ValueError(
                f"axis {name!r}: range spec {body!r} must be "
                f"'start:stop:num' or 'start:stop:num:log', "
                f"got {len(parts)} field(s)"
            )
        bounds = []
        for label, token in (("start", parts[0]), ("stop", parts[1])):
            try:
                bounds.append(float(token))
            except ValueError:
                raise ValueError(
                    f"axis {name!r}: range {label} {token!r} in {body!r} "
                    "must be a number"
                ) from None
        start, stop = bounds
        try:
            num = int(parts[2])
        except ValueError:
            raise ValueError(
                f"axis {name!r}: point count {parts[2]!r} in {body!r} "
                "must be an integer"
            ) from None
        if num < 1:
            raise ValueError(
                f"axis {name!r}: point count must be >= 1, got {num}"
            )
        if scale == "log":
            return name, tuple(np.geomspace(start, stop, num))
        return name, tuple(np.linspace(start, stop, num))
    try:
        return name, (float(body),)
    except ValueError:
        raise ValueError(
            f"axis {name!r}: cannot parse value {body!r} "
            "(want 'start:stop:num', 'start:stop:num:log', 'v1,v2,...', "
            "or a single number)"
        ) from None


class SweepGrid:
    """Cartesian product of named rate axes.

    Parameters
    ----------
    axes:
        ``{transition name: rate values}``.  Axis order is preserved and
        defines the enumeration order of :meth:`points`.
    """

    def __init__(self, axes: Mapping[str, Sequence[float]]) -> None:
        if not axes:
            raise ValueError("a sweep grid needs at least one axis")
        self.axes: Dict[str, Tuple[float, ...]] = {}
        for name, values in axes.items():
            vals = tuple(float(v) for v in values)
            if not vals:
                raise ValueError(f"axis {name!r} has no values")
            if any(not v > 0.0 for v in vals):
                raise ValueError(f"axis {name!r} has non-positive rates")
            self.axes[name] = vals

    @classmethod
    def from_specs(cls, specs: Sequence[str]) -> "SweepGrid":
        """Build from CLI-style ``NAME=VALUES`` strings."""
        axes: Dict[str, Tuple[float, ...]] = {}
        for spec in specs:
            name, values = parse_axis(spec)
            if name in axes:
                raise ValueError(f"duplicate axis {name!r}")
            axes[name] = values
        return cls(axes)

    @property
    def names(self) -> List[str]:
        return list(self.axes)

    def __len__(self) -> int:
        n = 1
        for values in self.axes.values():
            n *= len(values)
        return n

    def points(self) -> List[Dict[str, float]]:
        """All grid points as ``{axis: value}`` dicts, row-major order."""
        names = self.names
        return [
            dict(zip(names, combo))
            for combo in itertools.product(*self.axes.values())
        ]

    def __iter__(self) -> Iterator[Dict[str, float]]:
        return iter(self.points())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        shape = "x".join(str(len(v)) for v in self.axes.values())
        return f"SweepGrid({list(self.axes)}, shape={shape}, points={len(self)})"
