"""Parameter grids for rate sweeps.

A :class:`SweepGrid` is a cartesian product of named axes, each axis a
sequence of exponential-transition rates.  Points enumerate in row-major
order (last axis fastest), deterministically, so sweep results are stable
across runs and across serial/parallel execution.

Axes can be built programmatically (``SweepGrid({"AR": [0.5, 1.0]})``) or
parsed from compact CLI specs::

    AR=0.1:2.0:10      ten linearly spaced points in [0.1, 2.0]
    AR=0.1:10:5:log    five logarithmically spaced points in [0.1, 10]
    AR=0.5,1,2         an explicit list
    AR=1.5             a single pinned value
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Mapping, Sequence, Tuple

import numpy as np

__all__ = ["SweepGrid", "parse_axis"]


def parse_axis(spec: str) -> Tuple[str, Tuple[float, ...]]:
    """Parse one ``NAME=VALUES`` axis spec (see module docstring)."""
    name, sep, body = spec.partition("=")
    name = name.strip()
    if not sep or not name or not body.strip():
        raise ValueError(f"axis spec must look like NAME=VALUES, got {spec!r}")
    body = body.strip()
    try:
        if "," in body:
            values = tuple(float(v) for v in body.split(","))
        elif ":" in body:
            parts = body.split(":")
            scale = "lin"
            if parts[-1] in ("log", "lin"):
                scale = parts[-1]
                parts = parts[:-1]
            if len(parts) != 3:
                raise ValueError
            start, stop, num = float(parts[0]), float(parts[1]), int(parts[2])
            if num < 1:
                raise ValueError
            if scale == "log":
                values = tuple(np.geomspace(start, stop, num))
            else:
                values = tuple(np.linspace(start, stop, num))
        else:
            values = (float(body),)
    except ValueError:
        raise ValueError(
            f"cannot parse axis values {body!r} "
            "(want 'a:b:n', 'a:b:n:log', 'v1,v2,...', or a single value)"
        ) from None
    return name, values


class SweepGrid:
    """Cartesian product of named rate axes.

    Parameters
    ----------
    axes:
        ``{transition name: rate values}``.  Axis order is preserved and
        defines the enumeration order of :meth:`points`.
    """

    def __init__(self, axes: Mapping[str, Sequence[float]]) -> None:
        if not axes:
            raise ValueError("a sweep grid needs at least one axis")
        self.axes: Dict[str, Tuple[float, ...]] = {}
        for name, values in axes.items():
            vals = tuple(float(v) for v in values)
            if not vals:
                raise ValueError(f"axis {name!r} has no values")
            if any(not v > 0.0 for v in vals):
                raise ValueError(f"axis {name!r} has non-positive rates")
            self.axes[name] = vals

    @classmethod
    def from_specs(cls, specs: Sequence[str]) -> "SweepGrid":
        """Build from CLI-style ``NAME=VALUES`` strings."""
        axes: Dict[str, Tuple[float, ...]] = {}
        for spec in specs:
            name, values = parse_axis(spec)
            if name in axes:
                raise ValueError(f"duplicate axis {name!r}")
            axes[name] = values
        return cls(axes)

    @property
    def names(self) -> List[str]:
        return list(self.axes)

    def __len__(self) -> int:
        n = 1
        for values in self.axes.values():
            n *= len(values)
        return n

    def points(self) -> List[Dict[str, float]]:
        """All grid points as ``{axis: value}`` dicts, row-major order."""
        names = self.names
        return [
            dict(zip(names, combo))
            for combo in itertools.product(*self.axes.values())
        ]

    def __iter__(self) -> Iterator[Dict[str, float]]:
        return iter(self.points())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        shape = "x".join(str(len(v)) for v in self.axes.values())
        return f"SweepGrid({list(self.axes)}, shape={shape}, points={len(self)})"
