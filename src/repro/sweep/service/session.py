"""Request/response vocabulary of the sweep service.

A service request is *data* — plain JSON-compatible types only, never
code — so the same payload travels identically over the pickle channel
and the HTTP/JSON front end::

    {"op": "sweep",
     "model": {"kind": "gspn", "net": "mm1k", "buffer": 20},
     "axes": ["arrive=0.2:1.8:8"],
     "metrics": ["mean_tokens:queue"],
     "id": "client-7"}

Ops: ``sweep`` (grid solve), ``steady`` (one point at base parameters),
``lint`` (structural verification of a demo net), ``ping`` and ``stats``
(health/introspection; never queued).

:func:`canonical_model_spec` normalises the ``model`` spec — defaults
filled in, axis aliases resolved, numeric types pinned — and
:func:`parse_request` turns a payload into a validated
:class:`ServiceRequest` whose ``fingerprint``
(:func:`~repro.sweep.service.template_cache.spec_fingerprint` of the
canonical spec) keys the template cache.  Anything malformed raises
:class:`RequestError`, which the server maps to an ``error`` reply /
HTTP 400 — never a traceback, never a dead event loop.
"""

from __future__ import annotations

import math
import pickle
import socket
import struct
from dataclasses import replace
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.core.params import CPUModelParams
from repro.petri.analysis import ReachabilityOptions
from repro.sweep.backends import (
    GSPNBackend,
    SweepBackend,
    make_backend,
    resolve_cpu_axis,
)
from repro.sweep.grid import SweepGrid
from repro.sweep.nets import DEMO_NETS
from repro.sweep.results import PointFailure
from repro.sweep.service.template_cache import spec_fingerprint

__all__ = [
    "MODEL_KINDS",
    "REQUEST_OPS",
    "RequestError",
    "ServiceRequest",
    "build_backend",
    "canonical_model_spec",
    "parse_request",
    "recv_frame",
    "request_over_socket",
    "send_frame",
    "solve_response",
]

REQUEST_OPS = ("sweep", "steady", "lint", "ping", "stats")
MODEL_KINDS = ("gspn", "phase-type", "phase-type-batched", "renewal")

#: default metric columns for the CPU-parameter backends (mirrors the CLI)
CPU_DEFAULT_METRICS = ("fraction:standby", "fraction:active", "power")

#: which net-size knobs each demo net accepts, and the constructor
#: keyword each maps onto
_NET_SIZE_KWARGS: Dict[str, Dict[str, str]] = {
    "mm1k": {"buffer": "K"},
    "cpu-gspn": {"buffer": "buffer_capacity"},
    "wsn-cluster": {"buffer": "buffer_capacity", "nodes": "n_nodes"},
    "deadlock": {},
}

_DEFAULT_MAX_MARKINGS = 2_000_000


class RequestError(ValueError):
    """A malformed or unserviceable request (client error, HTTP 400)."""


# --------------------------------------------------------------------------
# model specs
# --------------------------------------------------------------------------


def _opt_int(spec: Mapping[str, Any], key: str, minimum: int = 1) -> Optional[int]:
    value = spec.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise RequestError(f"model.{key} must be an integer, got {value!r}")
    if float(value) != int(value):
        raise RequestError(f"model.{key} must be an integer, got {value!r}")
    value = int(value)
    if value < minimum:
        raise RequestError(f"model.{key} must be >= {minimum}, got {value}")
    return value


def _opt_float(spec: Mapping[str, Any], key: str) -> Optional[float]:
    value = spec.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise RequestError(f"model.{key} must be a number, got {value!r}")
    value = float(value)
    if not math.isfinite(value):
        raise RequestError(f"model.{key} must be finite, got {value!r}")
    return value


def _check_keys(spec: Mapping[str, Any], allowed: Sequence[str]) -> None:
    unknown = sorted(set(spec) - set(allowed))
    if unknown:
        raise RequestError(
            f"unknown model spec key(s) {unknown} for kind "
            f"{spec.get('kind')!r} (allowed: {sorted(allowed)})"
        )


def canonical_model_spec(spec: Any) -> Dict[str, Any]:
    """Validate a model spec and return its canonical form.

    Canonicalisation is what makes fingerprint collisions impossible by
    construction: every size- and solver-relevant field is present (its
    default filled in), axis aliases are resolved to one spelling, and
    numeric types are pinned (``int`` knobs stay ints, rates become
    floats) — so two specs fingerprint equal iff they configure the same
    prepared template.
    """
    if not isinstance(spec, Mapping):
        raise RequestError(
            f"model spec must be a mapping, got {type(spec).__name__}"
        )
    kind = spec.get("kind", "gspn")
    if kind not in MODEL_KINDS:
        raise RequestError(
            f"unknown model kind {kind!r} (have: {list(MODEL_KINDS)})"
        )
    solver = spec.get("solver", "auto")
    if solver not in ("auto", "lu", "gmres", "power"):
        raise RequestError(
            f"model.solver must be auto/lu/gmres/power, got {solver!r}"
        )
    canonical: Dict[str, Any] = {
        "kind": kind,
        "solver": solver,
        "tol": _opt_float(spec, "tol"),
        "max_iter": _opt_int(spec, "max_iter"),
    }
    if kind == "gspn":
        _check_keys(
            spec,
            (
                "kind", "net", "buffer", "nodes", "backend",
                "solver", "tol", "max_iter", "max_markings",
            ),
        )
        net = spec.get("net", "cpu-gspn")
        if net not in DEMO_NETS:
            raise RequestError(
                f"unknown net {net!r} (have: {sorted(DEMO_NETS)})"
            )
        backend = spec.get("backend", "auto")
        if backend not in ("auto", "dense", "sparse"):
            raise RequestError(
                f"model.backend must be auto/dense/sparse, got {backend!r}"
            )
        for knob in ("buffer", "nodes"):
            if spec.get(knob) is not None and knob not in _NET_SIZE_KWARGS[net]:
                raise RequestError(
                    f"model.{knob} does not apply to net {net!r}"
                )
        canonical.update(
            net=net,
            buffer=_opt_int(spec, "buffer"),
            nodes=_opt_int(spec, "nodes"),
            backend=backend,
            max_markings=_opt_int(spec, "max_markings") or _DEFAULT_MAX_MARKINGS,
        )
        return canonical
    # CPU-parameter families
    allowed = ["kind", "params", "solver", "tol", "max_iter"]
    if kind in ("phase-type", "phase-type-batched"):
        allowed += ["stages", "n_max"]
    if kind == "phase-type-batched":
        allowed += ["batch_size"]
    _check_keys(spec, allowed)
    params_in = spec.get("params") or {}
    if not isinstance(params_in, Mapping):
        raise RequestError(
            f"model.params must be a mapping, got {type(params_in).__name__}"
        )
    params: Dict[str, float] = {}
    for name, value in params_in.items():
        try:
            field = resolve_cpu_axis(str(name))
        except (KeyError, ValueError) as exc:
            raise RequestError(str(exc)) from exc
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise RequestError(
                f"model.params[{name!r}] must be a number, got {value!r}"
            )
        params[field] = float(value)
    canonical["params"] = dict(sorted(params.items()))
    if kind in ("phase-type", "phase-type-batched"):
        canonical["stages"] = _opt_int(spec, "stages") or 32
        canonical["n_max"] = _opt_int(spec, "n_max")
    if kind == "phase-type-batched":
        batch_size = spec.get("batch_size", "auto")
        if batch_size != "auto":
            if isinstance(batch_size, bool) or not isinstance(batch_size, int):
                raise RequestError(
                    f"model.batch_size must be 'auto' or an int >= 1, "
                    f"got {batch_size!r}"
                )
            if batch_size < 1:
                raise RequestError(
                    f"model.batch_size must be >= 1, got {batch_size}"
                )
        canonical["batch_size"] = batch_size
    return canonical


def build_backend(canonical: Mapping[str, Any]) -> SweepBackend:
    """Instantiate the (unprepared) backend a canonical spec describes."""
    kind = canonical["kind"]
    if kind == "gspn":
        factory, _ = DEMO_NETS[canonical["net"]]
        mapping = _NET_SIZE_KWARGS[canonical["net"]]
        size_kwargs = {
            mapping[knob]: canonical[knob]
            for knob in ("buffer", "nodes")
            if canonical.get(knob) is not None
        }
        return GSPNBackend(
            factory(**size_kwargs),
            options=ReachabilityOptions(max_markings=canonical["max_markings"]),
            ctmc_backend=canonical["backend"],
            method=canonical["solver"],
            tol=canonical["tol"],
            max_iter=canonical["max_iter"],
        )
    params = replace(CPUModelParams.paper_defaults(), **canonical["params"])
    if kind == "renewal":
        return make_backend("renewal", params=params)
    kwargs: Dict[str, Any] = dict(
        params=params,
        stages=canonical["stages"],
        n_max=canonical["n_max"],
        method=canonical["solver"],
        tol=canonical["tol"],
        max_iter=canonical["max_iter"],
    )
    if kind == "phase-type-batched":
        kwargs["batch_size"] = canonical["batch_size"]
    return make_backend(kind, **kwargs)


def default_metrics(canonical: Mapping[str, Any]) -> List[str]:
    """The spec's default metric columns (mirrors the sweep CLI)."""
    if canonical["kind"] == "gspn":
        return list(DEMO_NETS[canonical["net"]][1])
    return list(CPU_DEFAULT_METRICS)


# --------------------------------------------------------------------------
# requests
# --------------------------------------------------------------------------


class ServiceRequest:
    """One validated request, ready for execution."""

    __slots__ = (
        "op",
        "id",
        "model",
        "fingerprint",
        "metrics",
        "axis_names",
        "points",
        "lint_net",
        "lint_level",
        "lint_max_markings",
    )

    def __init__(self, op: str, request_id: Any = None):
        self.op = op
        self.id = request_id
        self.model: Optional[Dict[str, Any]] = None
        self.fingerprint: Optional[str] = None
        self.metrics: List[str] = []
        self.axis_names: List[str] = []
        self.points: List[Dict[str, float]] = []
        self.lint_net: Optional[str] = None
        self.lint_level: str = "standard"
        self.lint_max_markings: Optional[int] = None


_TOP_LEVEL_KEYS = {
    "kind", "version", "id", "op", "model", "axes", "metrics",
    "net", "level", "max_markings",
}


def parse_request(payload: Any) -> ServiceRequest:
    """Validate a request payload into a :class:`ServiceRequest`.

    Raises :class:`RequestError` on anything malformed — unknown op,
    unknown keys, bad axes, non-string metrics — with a message that
    names the offending piece.
    """
    if not isinstance(payload, Mapping):
        raise RequestError(
            f"request must be a mapping, got {type(payload).__name__}"
        )
    unknown = sorted(set(map(str, payload)) - _TOP_LEVEL_KEYS)
    if unknown:
        raise RequestError(
            f"unknown request key(s) {unknown} "
            f"(allowed: {sorted(_TOP_LEVEL_KEYS)})"
        )
    op = payload.get("op")
    if op not in REQUEST_OPS:
        raise RequestError(
            f"unknown op {op!r} (have: {list(REQUEST_OPS)})"
        )
    request = ServiceRequest(op, payload.get("id"))
    if op in ("ping", "stats"):
        return request
    if op == "lint":
        net = payload.get("net")
        if net not in DEMO_NETS:
            raise RequestError(
                f"lint needs a 'net' in {sorted(DEMO_NETS)}, got {net!r}"
            )
        level = payload.get("level", "standard")
        if level not in ("quick", "standard", "deep"):
            raise RequestError(
                f"lint level must be quick/standard/deep, got {level!r}"
            )
        max_markings = payload.get("max_markings")
        if max_markings is not None:
            if level != "deep":
                raise RequestError(
                    "max_markings applies only to level 'deep'"
                )
            if not isinstance(max_markings, int) or max_markings < 1:
                raise RequestError(
                    f"max_markings must be an int >= 1, got {max_markings!r}"
                )
        request.lint_net = net
        request.lint_level = level
        request.lint_max_markings = max_markings
        return request
    # sweep / steady
    request.model = canonical_model_spec(payload.get("model") or {})
    request.fingerprint = spec_fingerprint(request.model)
    metrics = payload.get("metrics")
    if metrics is None:
        request.metrics = default_metrics(request.model)
    else:
        if isinstance(metrics, str) or not isinstance(metrics, Sequence):
            raise RequestError("metrics must be a list of metric spec strings")
        if not metrics or not all(isinstance(m, str) for m in metrics):
            raise RequestError(
                "metrics must be a non-empty list of strings (service "
                "requests are data — callables cannot travel)"
            )
        if len(set(metrics)) != len(metrics):
            raise RequestError(f"duplicate metric names: {list(metrics)}")
        request.metrics = list(metrics)
    axes = payload.get("axes")
    if op == "steady":
        if axes is not None:
            raise RequestError(
                "steady takes no axes (use op 'sweep' for grids)"
            )
        request.points = [{}]
        return request
    if axes is None:
        raise RequestError("sweep needs 'axes' (list of NAME=VALUES specs)")
    try:
        if isinstance(axes, Mapping):
            grid = SweepGrid(
                {str(k): [float(v) for v in vs] for k, vs in axes.items()}
            )
        elif isinstance(axes, Sequence) and not isinstance(axes, str):
            if not all(isinstance(a, str) for a in axes):
                raise RequestError(
                    "axes list entries must be NAME=VALUES spec strings"
                )
            grid = SweepGrid.from_specs(list(axes))
        else:
            raise RequestError(
                "axes must be a list of NAME=VALUES specs or a "
                "name -> values mapping"
            )
    except RequestError:
        raise
    except (TypeError, ValueError) as exc:
        raise RequestError(str(exc)) from exc
    request.axis_names = grid.names
    request.points = [dict(p) for p in grid.points()]
    return request


# --------------------------------------------------------------------------
# responses
# --------------------------------------------------------------------------


def solve_response(
    request: ServiceRequest,
    rows: Mapping[int, Sequence[float]],
    errors: Mapping[int, PointFailure],
    **extra: Any,
) -> Dict[str, Any]:
    """Assemble a ``result`` reply for a sweep/steady request.

    *rows*/*errors* are keyed by point index; a missing index becomes an
    all-NaN row with a ``stage="merge"`` error record (same semantics as
    :meth:`repro.sweep.results.SweepResult.assemble`).
    """
    n = len(request.points)
    err_map: Dict[int, PointFailure] = dict(errors)
    table: List[List[float]] = []
    for i in range(n):
        row = rows.get(i)
        if row is None:
            row = [math.nan] * len(request.metrics)
            err_map.setdefault(
                i,
                PointFailure(
                    index=i,
                    point={k: float(v) for k, v in request.points[i].items()},
                    stage="merge",
                    error_type="MissingRow",
                    message="no result row was produced for this point",
                ),
            )
        table.append([float(v) for v in row])
    reply: Dict[str, Any] = {
        "kind": "result",
        "op": request.op,
        "id": request.id,
        "fingerprint": request.fingerprint,
        "metric_names": list(request.metrics),
        "errors": [err_map[i].to_dict() for i in sorted(err_map)],
        **extra,
    }
    if request.op == "steady":
        reply["values"] = dict(zip(request.metrics, table[0]))
    else:
        reply["axis_names"] = list(request.axis_names)
        reply["points"] = [dict(p) for p in request.points]
        reply["rows"] = table
    return reply


# --------------------------------------------------------------------------
# synchronous client helpers (CLI, tests, docs)
# --------------------------------------------------------------------------

_LEN = struct.Struct(">Q")


def send_frame(sock: socket.socket, message: Mapping[str, Any]) -> None:
    """Send one length-prefixed pickle frame (sync mirror of the
    asyncio :func:`~repro.sweep.distributed.protocol.send_message`)."""
    payload = pickle.dumps(dict(message), protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_LEN.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    while n:
        chunk = sock.recv(min(n, 1 << 20))
        if not chunk:
            raise ConnectionError("service closed the connection mid-frame")
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Dict[str, Any]:
    """Receive one length-prefixed pickle frame (sync)."""
    (length,) = _LEN.unpack(_recv_exact(sock, _LEN.size))
    message = pickle.loads(_recv_exact(sock, length))
    if not isinstance(message, dict) or "kind" not in message:
        raise ConnectionError(
            f"expected a reply dict with a 'kind', got {type(message).__name__}"
        )
    return message


def request_over_socket(
    host: str,
    port: int,
    payload: Mapping[str, Any],
    timeout: float = 120.0,
) -> Dict[str, Any]:
    """One request/reply cycle over the pickle channel (sync, blocking)."""
    from repro.sweep.distributed.protocol import PROTOCOL_VERSION

    message = {"kind": "request", "version": PROTOCOL_VERSION, **payload}
    with socket.create_connection((host, port), timeout=timeout) as sock:
        send_frame(sock, message)
        return recv_frame(sock)
