"""Request admission: bounded concurrency, bounded queueing, drain.

The service runs at most ``max_inflight`` requests at once.  Beyond
that, up to ``max_pending`` callers wait in FIFO order on one
:class:`asyncio.Condition`; a caller arriving when both bounds are full
is rejected immediately with :class:`ServiceBusyError` — backpressure is
a *reply* (``busy`` / HTTP 429), never an unbounded queue.

Drain (SIGTERM) flips one flag: admitted requests finish, waiting ones
are woken and rejected with :class:`ServiceDrainingError`, new arrivals
are refused at the door, and :meth:`wait_drained` resolves once the last
in-flight request releases its slot.
"""

from __future__ import annotations

import asyncio

from repro import obs

__all__ = ["AdmissionController", "ServiceBusyError", "ServiceDrainingError"]


class ServiceBusyError(RuntimeError):
    """Both the in-flight set and the waiting queue are full (HTTP 429)."""


class ServiceDrainingError(RuntimeError):
    """The service is draining and admits no new work (HTTP 503)."""


class AdmissionController:
    """Counting admission gate with a bounded wait queue and drain mode."""

    def __init__(self, max_inflight: int, max_pending: int) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if max_pending < 0:
            raise ValueError(f"max_pending must be >= 0, got {max_pending}")
        self.max_inflight = int(max_inflight)
        self.max_pending = int(max_pending)
        self._inflight = 0
        self._waiting = 0
        self._draining = False
        self._cond = asyncio.Condition()

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def waiting(self) -> int:
        return self._waiting

    @property
    def draining(self) -> bool:
        return self._draining

    async def admit(self) -> None:
        """Take an in-flight slot, waiting in the bounded queue if needed.

        Raises :class:`ServiceDrainingError` while draining and
        :class:`ServiceBusyError` when the queue is full; on success the
        caller owns one slot and must :meth:`release` it exactly once.
        """
        async with self._cond:
            if self._draining:
                raise ServiceDrainingError("service is draining")
            if self._inflight < self.max_inflight:
                self._inflight += 1
                return
            if self._waiting >= self.max_pending:
                obs.incr("service.requests.rejected")
                raise ServiceBusyError(
                    f"{self._inflight} request(s) in flight and "
                    f"{self._waiting} waiting (limits: "
                    f"{self.max_inflight}/{self.max_pending})"
                )
            self._waiting += 1
            obs.gauge("service.queue.depth", self._waiting)
            obs.gauge_max("service.queue.depth.max", self._waiting)
            try:
                await self._cond.wait_for(
                    lambda: self._draining
                    or self._inflight < self.max_inflight
                )
            finally:
                self._waiting -= 1
                obs.gauge("service.queue.depth", self._waiting)
            if self._draining:
                self._cond.notify_all()  # let wait_drained() re-check
                raise ServiceDrainingError("service is draining")
            self._inflight += 1

    async def release(self) -> None:
        """Give back a slot taken by :meth:`admit`."""
        async with self._cond:
            self._inflight -= 1
            self._cond.notify_all()

    async def begin_drain(self) -> None:
        """Refuse new work and wake every waiter (they see draining)."""
        async with self._cond:
            self._draining = True
            self._cond.notify_all()

    async def wait_drained(self) -> None:
        """Resolve once nothing is in flight and nobody is waiting."""
        async with self._cond:
            await self._cond.wait_for(
                lambda: self._inflight == 0 and self._waiting == 0
            )
