"""Minimal HTTP/1.1 request parsing and response framing over asyncio.

The service's JSON front end is deliberately tiny — no routing
framework, no dependency — because the environment ships none and the
surface is four routes.  This module owns the *wire* concerns only:
parse one request (method, path, headers, body) with hard caps on every
dimension, and frame one JSON response with ``Connection: close``.
Routing and request semantics live in
:class:`~repro.sweep.service.server.SweepService`.

Anything malformed raises :class:`HttpError` with the right status code;
the server turns it into a JSON error body and closes the connection —
a fuzzer feeding garbage gets 4xx replies, never a traceback and never a
dead accept loop.
"""

from __future__ import annotations

import asyncio
import json
import math
from typing import Any, Dict, Optional, Sequence, Tuple

__all__ = [
    "HTTP_VERSION",
    "MAX_BODY_BYTES",
    "HttpError",
    "json_safe",
    "read_request",
    "response_bytes",
]

HTTP_VERSION = "HTTP/1.1"

#: request bodies are model specs and axis lists — 1 MiB is generous
MAX_BODY_BYTES = 1 << 20
_MAX_REQUEST_LINE = 8192
_MAX_HEADER_BYTES = 16384
_MAX_HEADERS = 64

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A malformed or unroutable HTTP request.

    Carries the status to reply with; ``allow`` lists the permitted
    methods for a 405 (the ``Allow`` header is mandatory there).
    """

    def __init__(
        self, status: int, message: str, allow: Optional[Sequence[str]] = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.allow = tuple(allow) if allow else None


async def _read_line(reader: asyncio.StreamReader, limit: int) -> bytes:
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.LimitOverrunError as exc:
        raise HttpError(400, "header line too long") from exc
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise
        raise HttpError(400, "truncated request") from exc
    if len(line) > limit:
        raise HttpError(400, "header line too long")
    return line[:-2]


async def read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    """Read one HTTP request; ``None`` if the peer closed before sending.

    Returns ``(method, path, headers, body)`` with header names
    lower-cased.  Raises :class:`HttpError` on malformed framing,
    oversized pieces, or unsupported transfer encodings.
    """
    try:
        request_line = await _read_line(reader, _MAX_REQUEST_LINE)
    except asyncio.IncompleteReadError:
        return None
    if not request_line:
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise HttpError(400, f"malformed request line: {request_line[:80]!r}")
    method, path, _version = parts
    headers: Dict[str, str] = {}
    total = 0
    while True:
        try:
            line = await _read_line(reader, _MAX_HEADER_BYTES)
        except asyncio.IncompleteReadError as exc:
            raise HttpError(400, "truncated headers") from exc
        if not line:
            break
        total += len(line)
        if total > _MAX_HEADER_BYTES or len(headers) >= _MAX_HEADERS:
            raise HttpError(400, "headers too large")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line[:80]!r}")
        headers[name.strip().lower()] = value.strip()
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HttpError(400, "chunked transfer encoding is not supported")
    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError as exc:
            raise HttpError(
                400, f"invalid Content-Length: {length_header!r}"
            ) from exc
        if length < 0:
            raise HttpError(400, f"invalid Content-Length: {length}")
        if length > MAX_BODY_BYTES:
            raise HttpError(
                413, f"body of {length} bytes exceeds {MAX_BODY_BYTES}"
            )
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise HttpError(400, "body shorter than Content-Length") from exc
    return method, path, headers, body


def json_safe(value: Any) -> Any:
    """Recursively replace non-finite floats with ``None``.

    JSON has no NaN/Infinity; a failed sweep point's NaN row must still
    serialise.  Only the HTTP layer lossy-coerces — the pickle channel
    keeps exact floats.
    """
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {k: json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(v) for v in value]
    return value


def response_bytes(
    status: int,
    payload: Any,
    allow: Optional[Sequence[str]] = None,
) -> bytes:
    """Frame *payload* as a JSON response (always ``Connection: close``)."""
    body = json.dumps(json_safe(payload)).encode()
    headers = [
        f"{HTTP_VERSION} {status} {_STATUS_TEXT.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    if allow:
        headers.append(f"Allow: {', '.join(allow)}")
    return ("\r\n".join(headers) + "\r\n\r\n").encode() + body
