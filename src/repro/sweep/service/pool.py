"""Elastic pool of persistent service workers.

With ``--workers N`` the service forks N
:func:`~repro.sweep.distributed.worker.run_service_worker` processes
that dial back into the service's own pickle port and stay connected
across requests.  The pool hands one ``task`` (a request's remaining
grid points) to one worker at a time, streams rows back with the same
telemetry-before-row / first-write-wins discipline as the one-shot
coordinator, and is **elastic**: a worker that dies — mid-request or
idle — is pruned, a replacement is forked (budget-capped), and the
request's unfinished points are retried on a survivor.  Only when one
request has burned through ``max_retries + 1`` workers does it fail with
:class:`ServiceWorkerError`; the daemon itself keeps serving.

Workers cache prepared templates in their own bounded LRU and ask for a
missing one with ``need_template`` — so a freshly respawned (empty)
worker self-heals on its first task, and repeat fingerprints skip the
template ship entirely.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, Dict, List, Optional, Set, Tuple

from repro import obs
from repro.sweep.distributed.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    recv_message,
    send_message,
)
from repro.sweep.distributed.worker import launch_service_workers
from repro.sweep.engine.collector import RowCollector
from repro.sweep.results import PointFailure
from repro.sweep.service.session import RequestError, ServiceRequest
from repro.sweep.service.template_cache import TemplateEntry

__all__ = ["ServiceWorkerError", "WorkerPool"]

_ADOPTION_TIMEOUT = 30.0
_MONITOR_INTERVAL = 0.2


class ServiceWorkerError(RuntimeError):
    """One request exhausted its worker-retry budget (HTTP 500)."""


class _WorkerDied(Exception):
    """The worker's connection failed mid-task (requeue + respawn)."""


class _WorkerFatal(Exception):
    """The worker reported a configuration error (the request's fault)."""


class _Worker:
    __slots__ = ("reader", "writer", "label", "affinity", "tasks")

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        label: str,
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.label = label
        #: fingerprints this worker has been shipped (scheduling hint —
        #: its LRU may have evicted them; ``need_template`` self-corrects)
        self.affinity: Set[str] = set()
        self.tasks = 0


class WorkerPool:
    """Fork, adopt, schedule, and replace persistent service workers."""

    def __init__(
        self,
        host: str,
        port: int,
        n_workers: int,
        *,
        capacity: int = 4,
        max_retries: int = 2,
        fault: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.n_workers = int(n_workers)
        self.capacity = int(capacity)
        self.max_retries = int(max_retries)
        self.fault = dict(fault or {})
        self._procs: List[Any] = []
        self._workers: List[_Worker] = []
        self._idle: List[_Worker] = []
        self._cond = asyncio.Condition()
        self._task_ids = itertools.count(1)
        self._monitor: Optional[asyncio.Task] = None
        self._closed = False
        self.respawns = 0
        self.deaths = 0
        # enough to survive max_retries on every original worker, plus
        # slack for idle deaths; a backstop, not a scheduling knob
        self.max_respawns = self.n_workers * (self.max_retries + 1) + 2

    async def start(self) -> None:
        """Fork the workers and wait until every one has been adopted."""
        if self.n_workers <= 0:
            return
        self._procs = launch_service_workers(
            self.n_workers,
            self.host,
            self.port,
            die_after_rows=self.fault.get("die_after_rows"),
            die_worker=self.fault.get("die_worker"),
        )
        async with self._cond:
            await asyncio.wait_for(
                self._cond.wait_for(
                    lambda: len(self._workers) >= self.n_workers
                ),
                timeout=_ADOPTION_TIMEOUT,
            )
        self._monitor = asyncio.create_task(self._monitor_loop())

    async def adopt(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        hello: Dict[str, Any],
    ) -> None:
        """Welcome a worker that dialled in; the pool owns its socket now."""
        await send_message(
            writer,
            {
                "kind": "welcome",
                "version": PROTOCOL_VERSION,
                "capacity": self.capacity,
                "telemetry": obs.enabled(),
            },
        )
        worker = _Worker(reader, writer, str(hello.get("worker", "?")))
        async with self._cond:
            self._workers.append(worker)
            self._idle.append(worker)
            self._cond.notify_all()
        obs.incr("service.workers.adopted")

    # -- scheduling --------------------------------------------------------

    async def _acquire(self, fingerprint: Optional[str]) -> _Worker:
        async with self._cond:
            await self._cond.wait_for(
                lambda: self._idle or self._closed or not self._alive_procs()
            )
            if not self._idle:
                raise ServiceWorkerError(
                    "no live workers remain (respawn budget exhausted)"
                )
            worker = next(
                (w for w in self._idle if fingerprint in w.affinity), None
            )
            if worker is None:
                worker = self._idle[0]
            self._idle.remove(worker)
            return worker

    async def _release(self, worker: _Worker) -> None:
        async with self._cond:
            if worker in self._workers:
                self._idle.append(worker)
                self._cond.notify_all()

    def _alive_procs(self) -> int:
        return sum(1 for p in self._procs if p.is_alive())

    async def _note_death(self, worker: _Worker) -> None:
        """Prune a dead worker and fork a replacement (budget-capped)."""
        self.deaths += 1
        obs.incr("service.workers.died")
        async with self._cond:
            if worker in self._workers:
                self._workers.remove(worker)
            if worker in self._idle:
                self._idle.remove(worker)
            self._cond.notify_all()
        worker.writer.close()
        self._maybe_respawn()

    def _maybe_respawn(self) -> None:
        if self._closed or self.respawns >= self.max_respawns:
            return
        # elasticity is about *connected* workers: the dead shard's
        # process may linger as a zombie for a moment after its socket
        # died, and waiting for the OS to agree would miss the respawn
        if len(self._workers) >= self.n_workers:
            return
        # replacements are never armed with the fault hook — the injected
        # crash is a one-shot test stimulus, not a heritable trait
        self._procs.extend(
            launch_service_workers(1, self.host, self.port)
        )
        self.respawns += 1
        obs.incr("service.workers.respawned")

    async def _monitor_loop(self) -> None:
        """Prune workers that die while idle (their socket hits EOF)."""
        while not self._closed:
            await asyncio.sleep(_MONITOR_INTERVAL)
            async with self._cond:
                dead = [w for w in self._idle if w.reader.at_eof()]
            for worker in dead:
                await self._note_death(worker)

    # -- execution ---------------------------------------------------------

    async def run_points(
        self, request: ServiceRequest, entry: TemplateEntry
    ) -> Tuple[Dict[int, List[float]], Dict[int, PointFailure]]:
        """Solve every point of *request* on the pool, surviving deaths.

        Returns ``(rows, errors)`` keyed by point index.  Numeric
        failures become error records; a worker death requeues the
        unfinished points (``max_retries + 1`` attempts per request);
        a configuration error raises
        :class:`~repro.sweep.service.session.RequestError`.
        """
        # failures stay the request layer's concern: the collector counts
        # completions under the service's own name and skips the failed
        # counter (numeric failures are per-request result data here, not
        # sweep-level progress)
        collector = RowCollector(
            len(request.metrics),
            trace=obs.current_trace(),
            counter_completed="service.rows.completed",
            counter_failed=None,
        )
        deaths = 0
        total = len(request.points)
        while collector.n_completed < total:
            worker = await self._acquire(request.fingerprint)
            try:
                await self._execute(worker, request, entry, collector)
            except _WorkerDied as exc:
                deaths += 1
                await self._note_death(worker)
                if deaths > self.max_retries:
                    raise ServiceWorkerError(
                        f"request killed {deaths} worker(s): {exc}"
                    ) from exc
                continue
            except _WorkerFatal as exc:
                await self._release(worker)
                raise RequestError(str(exc)) from exc
            await self._release(worker)
        return collector.rows, collector.errors

    async def _execute(
        self,
        worker: _Worker,
        request: ServiceRequest,
        entry: TemplateEntry,
        collector: RowCollector,
    ) -> None:
        pending = [
            i for i in range(len(request.points)) if i not in collector.rows
        ]
        task_id = next(self._task_ids)
        try:
            await send_message(
                worker.writer,
                {
                    "kind": "task",
                    "task_id": task_id,
                    "fingerprint": request.fingerprint,
                    "metrics": list(request.metrics),
                    "indices": pending,
                    "points": [request.points[i] for i in pending],
                },
            )
            worker.tasks += 1
            while True:
                message = await recv_message(worker.reader)
                kind = message["kind"]
                if kind == "need_template":
                    await send_message(
                        worker.writer,
                        {
                            "kind": "template",
                            "fingerprint": request.fingerprint,
                            "model": entry.backend,
                            "metrics": list(request.metrics),
                            "telemetry": obs.enabled(),
                        },
                    )
                    worker.affinity.add(request.fingerprint or "")
                    obs.incr("service.templates.shipped")
                elif kind == "telemetry":
                    collector.apply_telemetry(message)
                elif kind in ("row", "rows"):
                    payloads = (
                        collector.apply_rows_frame(message)
                        if kind == "rows"
                        else [message]
                    )
                    for payload in payloads:
                        collector.store(
                            payload["index"],
                            payload["values"],
                            payload.get("error"),
                        )
                elif kind == "fatal":
                    raise _WorkerFatal(
                        f"{message.get('error_type')}: {message.get('message')}"
                    )
                elif kind == "task_done":
                    return
                else:
                    raise ProtocolError(
                        f"unexpected {kind!r} from worker {worker.label}"
                    )
        except (
            asyncio.IncompleteReadError,
            ProtocolError,
            ConnectionError,
            OSError,
        ) as exc:
            raise _WorkerDied(f"{worker.label}: {exc}") from exc

    # -- lifecycle ---------------------------------------------------------

    async def shutdown(self) -> None:
        """Stop monitors, tell workers to exit, reap the processes."""
        self._closed = True
        if self._monitor is not None:
            self._monitor.cancel()
            try:
                await self._monitor
            except asyncio.CancelledError:
                pass
        async with self._cond:
            workers = list(self._workers)
            self._workers.clear()
            self._idle.clear()
            self._cond.notify_all()
        for worker in workers:
            try:
                await send_message(worker.writer, {"kind": "shutdown"})
            except (ConnectionError, OSError):
                pass
            worker.writer.close()
        await asyncio.to_thread(self._reap)

    def _reap(self) -> None:
        for proc in self._procs:
            proc.join(timeout=5.0)
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)

    def stats(self) -> Dict[str, Any]:
        return {
            "configured": self.n_workers,
            "connected": len(self._workers),
            "idle": len(self._idle),
            "deaths": self.deaths,
            "respawns": self.respawns,
            "pids": [p.pid for p in self._procs if p.is_alive()],
        }
