"""Cross-request micro-batching for the service's inline solve path.

Without a worker pool the service used to hold one ``asyncio.Lock`` per
template and run each request's solve alone under it — N concurrent
clients querying the *same* template paid N full solves in single file.
:class:`MicroBatcher` replaces that lock discipline with a **batching
window**: the first request for a fingerprint opens a flight, waits
``window_s`` for same-fingerprint company, then all pending requests are
solved together.  On a batch-capable backend the flight concatenates
every request's points into one point list and runs the engine's stacked
``solve_batch`` chunks over it — one block-diagonal factorisation
amortised across all coalesced requests — before slicing per-request
rows back out.  A window of zero still coalesces: whatever queued while
the previous flight was solving departs together on the next one.

Failure isolation is per request, never per flight:

- a point that fails *numerically* surfaces as that request's NaN row +
  error record, exactly as a solo solve would report it;
- a request whose points or metrics are *misconfigured* (the stacked
  solve raises one of
  :data:`~repro.sweep.engine.points.CONFIG_ERROR_TYPES`) triggers a
  fallback: the flight re-solves request-by-request so only the
  offending request fails with ``bad-request`` and its coalesced
  siblings still get their rows.

Telemetry: each flight runs in a thread under a private trace (see
:func:`run_traced`) whose segment the event loop merges exactly once,
plus one ``service.batch`` span recording the fingerprint, how many
requests coalesced, and the total point count.  Per-point ``sweep.point``
spans are emitted by the engine row helpers as usual, so a coalesced
request's trace is indistinguishable from a solo one.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.sweep.engine.points import (
    CONFIG_ERROR_TYPES,
    iter_partition_rows,
    rows_from_solutions,
)
from repro.sweep.results import PointFailure
from repro.sweep.service.session import RequestError, ServiceRequest
from repro.sweep.service.template_cache import TemplateEntry

__all__ = ["MicroBatcher", "run_traced"]

#: outcome of one request inside a flight:
#: ``("ok", rows, errors)`` or ``("error", exception)``
_Outcome = Tuple[Any, ...]


def run_traced(fn: Callable[[], Any], name: str) -> Tuple[Any, Optional[dict]]:
    """Run *fn* under a private trace; return ``(value, segment)``.

    The thread-side half of the service's telemetry discipline: work
    dispatched to ``asyncio.to_thread`` never writes the service trace
    directly (concurrent threads would interleave); it records into a
    private trace whose segment the event loop merges exactly once.
    """
    local = obs.Trace(name) if obs.enabled() else None
    token = obs.activate(local) if local is not None else None
    try:
        value = fn()
    finally:
        if token is not None:
            obs.deactivate(token)
    segment = None
    if local is not None:
        segment = {
            "spans": local.slice_spans(0),
            "counters": local.drain_counters(),
        }
    return value, segment


class _Waiter:
    __slots__ = ("request", "future")

    def __init__(
        self, request: ServiceRequest, future: "asyncio.Future[_Outcome]"
    ) -> None:
        self.request = request
        self.future = future


class MicroBatcher:
    """Coalesce concurrent same-template requests into stacked solves."""

    def __init__(
        self,
        *,
        window_s: float = 0.0,
        solve_delay: Optional[float] = None,
    ) -> None:
        self.window_s = max(0.0, float(window_s))
        self.solve_delay = solve_delay
        self.flights = 0
        self.coalesced = 0
        self._pending: Dict[str, List[_Waiter]] = {}
        self._flights: Dict[str, asyncio.Task] = {}

    async def submit(
        self, entry: TemplateEntry, request: ServiceRequest
    ) -> Tuple[Dict[int, List[float]], Dict[int, PointFailure]]:
        """Queue *request* on its fingerprint's flight; await its rows.

        Raises whatever the request's own solve raised (mapped to
        :class:`~repro.sweep.service.session.RequestError` for
        configuration errors) — a coalesced sibling's failure never
        propagates here.
        """
        fingerprint = request.fingerprint or ""
        future: "asyncio.Future[_Outcome]" = (
            asyncio.get_running_loop().create_future()
        )
        self._pending.setdefault(fingerprint, []).append(
            _Waiter(request, future)
        )
        if fingerprint not in self._flights:
            self._flights[fingerprint] = asyncio.create_task(
                self._flight(entry, fingerprint)
            )
        outcome = await future
        if outcome[0] == "ok":
            return outcome[1], outcome[2]
        raise outcome[1]

    async def drain(self) -> None:
        """Wait for every open flight to land (service drain)."""
        flights = list(self._flights.values())
        if flights:
            await asyncio.gather(*flights, return_exceptions=True)

    def stats(self) -> Dict[str, Any]:
        return {
            "window_ms": round(self.window_s * 1000.0, 3),
            "open_flights": len(self._flights),
            "flights": self.flights,
            "coalesced": self.coalesced,
        }

    # -- the flight loop ---------------------------------------------------

    async def _flight(self, entry: TemplateEntry, fingerprint: str) -> None:
        try:
            while True:
                if self.window_s > 0.0:
                    await asyncio.sleep(self.window_s)
                # pop-and-test is atomic with the submit path (no await
                # between here and the finally below), so a request can
                # never land in a pending list no flight will serve
                waiters = self._pending.pop(fingerprint, [])
                if not waiters:
                    return
                await self._serve(entry, fingerprint, waiters)
                if fingerprint not in self._pending:
                    return
        finally:
            self._flights.pop(fingerprint, None)

    async def _serve(
        self,
        entry: TemplateEntry,
        fingerprint: str,
        waiters: List[_Waiter],
    ) -> None:
        requests = [w.request for w in waiters]
        trace = obs.current_trace()
        t0 = trace.now() if trace is not None else 0.0
        try:
            async with entry.lock:  # one solve per template at a time
                outcomes, segment = await asyncio.to_thread(
                    self._solve_flight, entry.backend, requests
                )
        except asyncio.CancelledError:
            for waiter in waiters:
                if not waiter.future.done():
                    waiter.future.cancel()
            raise
        except BaseException as exc:
            outcomes = [("error", exc)] * len(waiters)
            segment = None
        if trace is not None:
            if segment is not None:
                trace.merge_segment(**segment)
            trace.add_span(
                "service.batch",
                t0,
                trace.now(),
                fingerprint=fingerprint,
                requests=len(waiters),
                points=sum(len(r.points) for r in requests),
            )
        self.flights += 1
        obs.incr("service.batch.flights")
        if len(waiters) > 1:
            self.coalesced += len(waiters) - 1
            obs.incr("service.batch.coalesced", len(waiters) - 1)
        for waiter, outcome in zip(waiters, outcomes):
            if not waiter.future.done():
                waiter.future.set_result(outcome)

    # -- thread-side solving -----------------------------------------------

    def _solve_flight(
        self, backend: Any, requests: Sequence[ServiceRequest]
    ) -> Tuple[List[_Outcome], Optional[dict]]:
        return run_traced(
            lambda: self._solve_requests(backend, requests), "service-solve"
        )

    def _solve_requests(
        self, backend: Any, requests: Sequence[ServiceRequest]
    ) -> List[_Outcome]:
        total = sum(len(r.points) for r in requests)
        if getattr(backend, "batch_capable", False) and total > 1:
            try:
                return self._solve_stacked(backend, requests)
            except CONFIG_ERROR_TYPES:
                # one request's bad point spoiled the stacked solve; fall
                # through so only that request fails and the coalesced
                # siblings still get their rows
                pass
        outcomes: List[_Outcome] = []
        for request in requests:
            backend.reset_point_state()
            rows: Dict[int, List[float]] = {}
            errors: Dict[int, PointFailure] = {}
            try:
                for index, row, failure in iter_partition_rows(
                    backend, request.metrics, request.points
                ):
                    rows[index] = row
                    if failure is not None:
                        errors[index] = failure
                    if self.solve_delay:
                        time.sleep(self.solve_delay)
                outcomes.append(("ok", rows, errors))
            except CONFIG_ERROR_TYPES as exc:
                outcomes.append(("error", RequestError(str(exc))))
        return outcomes

    def _solve_stacked(
        self, backend: Any, requests: Sequence[ServiceRequest]
    ) -> List[_Outcome]:
        """Solve every request's points as one concatenated batch run.

        Configuration errors raised by ``solve_batch`` itself propagate
        (the caller falls back to per-request isolation); numeric
        failures come back per point and config errors in a request's
        *metrics* are caught per request below.
        """
        all_points: List[Any] = []
        slices: List[Tuple[ServiceRequest, int, int]] = []
        for request in requests:
            start = len(all_points)
            all_points.extend(request.points)
            slices.append((request, start, len(all_points)))
        backend.reset_point_state()
        batch = max(1, backend.resolve_batch_size(len(all_points)))
        solutions: List[Any] = []
        for base in range(0, len(all_points), batch):
            sub = all_points[base : base + batch]
            with obs.span("sweep.batch", start=base, points=len(sub)):
                solutions.extend(backend.solve_batch(sub))
        outcomes: List[_Outcome] = []
        for request, start, stop in slices:
            rows: Dict[int, List[float]] = {}
            errors: Dict[int, PointFailure] = {}
            try:
                for index, row, failure in rows_from_solutions(
                    backend,
                    request.metrics,
                    request.points,
                    solutions[start:stop],
                ):
                    rows[index] = row
                    if failure is not None:
                        errors[index] = failure
                    if self.solve_delay:
                        time.sleep(self.solve_delay)
                outcomes.append(("ok", rows, errors))
            except CONFIG_ERROR_TYPES as exc:
                outcomes.append(("error", RequestError(str(exc))))
        return outcomes
