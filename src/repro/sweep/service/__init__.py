"""Always-on sweep service: a persistent solver daemon.

One-shot sweeps (`repro-experiments sweep`) pay the rate-independent
preparation — reachability exploration, stage expansion, symbolic
factorisation — on every invocation.  The service pays it once per
*model*: a daemon (`repro-experiments serve`) keeps prepared backend
templates in a bounded LRU keyed by spec fingerprint and answers
sweep/steady/lint requests over the distributed layer's pickle framing
and a dependency-free HTTP/JSON front end, with bounded admission
(backpressure as ``busy``/429 replies), optional persistent worker
shards that are respawned when they die, and graceful SIGTERM drain.

See ``docs/service.md`` for the lifecycle, the fingerprint/LRU
contract, and the HTTP API.
"""

from repro.sweep.service.admission import (
    AdmissionController,
    ServiceBusyError,
    ServiceDrainingError,
)
from repro.sweep.service.pool import ServiceWorkerError, WorkerPool
from repro.sweep.service.server import SweepService
from repro.sweep.service.session import (
    RequestError,
    build_backend,
    canonical_model_spec,
    parse_request,
    request_over_socket,
    solve_response,
)
from repro.sweep.service.template_cache import (
    LRUTemplates,
    TemplateCache,
    spec_fingerprint,
)

__all__ = [
    "AdmissionController",
    "LRUTemplates",
    "RequestError",
    "ServiceBusyError",
    "ServiceDrainingError",
    "ServiceWorkerError",
    "SweepService",
    "TemplateCache",
    "WorkerPool",
    "build_backend",
    "canonical_model_spec",
    "parse_request",
    "request_over_socket",
    "solve_response",
    "spec_fingerprint",
]
