"""Prepared-template LRU for the sweep service.

The expensive half of every request is rate-independent: exploring a
GSPN's reachability graph, stage-expanding the phase-type chain, running
the symbolic factorisation.  The service pays it once per *model*, not
once per request, by caching prepared
:class:`~repro.sweep.backends.base.SweepBackend` instances keyed by a
**spec fingerprint** — the SHA-256 of the canonical model spec (see
:func:`repro.sweep.service.session.canonical_model_spec`).

Collision-impossibility is by construction, not by luck: the canonical
spec carries *every* size- and solver-relevant field with its default
filled in and its type normalised (ints stay ints, rates become floats,
mappings sort their keys), so two requests differing in ``--buffer`` or
``--stages`` always serialise to different canonical JSON and therefore
different fingerprints; identical requests written differently (key
order, ``20`` vs ``20.0`` for a float field) collapse to the same one.

Two layers:

- :class:`LRUTemplates` — a plain synchronous bounded LRU with
  hit/miss/eviction accounting.  Used directly by the persistent service
  workers (their side of the cache) and property-tested by hypothesis.
- :class:`TemplateCache` — the service's asyncio wrapper adding
  **single-flight preparation**: concurrent requests for the same
  missing fingerprint share one build (the explore/stage-expand runs in
  a thread exactly once; everyone else awaits the same future).  The
  build records its spans into a private trace and the segment is merged
  into the service trace once, on the event loop — which is what makes
  the ``prepare.explore`` span count == 1 assertion of the concurrency
  tests well-defined.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro import obs

__all__ = ["LRUTemplates", "TemplateCache", "TemplateEntry", "spec_fingerprint"]


def spec_fingerprint(spec: Mapping[str, Any]) -> str:
    """SHA-256 of the canonical JSON serialisation of a model spec.

    *spec* must already be canonical (plain JSON types, defaults filled
    in — :func:`~repro.sweep.service.session.canonical_model_spec`); the
    hash is over ``json.dumps(..., sort_keys=True)`` so key order never
    matters and every field always contributes.
    """
    payload = json.dumps(
        spec, sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class LRUTemplates:
    """A bounded least-recently-used map with usage accounting.

    ``get`` counts a hit (and refreshes recency) or a miss; ``put``
    inserts/updates (refreshing recency) and evicts the least recently
    *used* entries beyond ``capacity``, returning what it dropped.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def keys(self) -> List[str]:
        """Fingerprints, least recently used first."""
        return list(self._entries)

    def get(self, fingerprint: str) -> Optional[Any]:
        try:
            value = self._entries[fingerprint]
        except KeyError:
            self.misses += 1
            return None
        self._entries.move_to_end(fingerprint)
        self.hits += 1
        return value

    def put(self, fingerprint: str, value: Any) -> List[str]:
        """Insert/update; returns the fingerprints evicted (possibly [])."""
        self._entries[fingerprint] = value
        self._entries.move_to_end(fingerprint)
        evicted: List[str] = []
        while len(self._entries) > self.capacity:
            dropped, _ = self._entries.popitem(last=False)
            evicted.append(dropped)
            self.evictions += 1
        return evicted

    def stats(self) -> Dict[str, int]:
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


class TemplateEntry:
    """One cached, prepared backend plus its serialisation lock.

    ``lock`` serialises solve *flights* on the same template (a backend
    instance is not safe for concurrent solves — its ``SolverCache``
    warm state is mutable).  In inline mode the
    :class:`~repro.sweep.service.batching.MicroBatcher` holds it per
    flight, so concurrent same-template requests coalesce into one
    locked stacked solve instead of queueing one solve each; requests
    for *different* templates run concurrently as before.
    """

    __slots__ = ("fingerprint", "backend", "lock", "prepare_s", "uses")

    def __init__(self, fingerprint: str, backend: Any, prepare_s: float):
        self.fingerprint = fingerprint
        self.backend = backend
        self.lock = asyncio.Lock()
        self.prepare_s = prepare_s
        self.uses = 0


class TemplateCache:
    """Asyncio front of :class:`LRUTemplates` with single-flight builds."""

    def __init__(self, capacity: int) -> None:
        self._lru = LRUTemplates(capacity)
        self._preparing: Dict[str, "asyncio.Future[TemplateEntry]"] = {}
        self.shared = 0  # requests that piggybacked on an in-flight build
        self.builds = 0  # builds actually run (the "explored once" number)

    def __len__(self) -> int:
        return len(self._lru)

    async def get_or_prepare(
        self, fingerprint: str, builder: Callable[[], Any]
    ) -> Tuple[TemplateEntry, bool]:
        """Return ``(entry, hit)`` for *fingerprint*, building at most once.

        *builder* constructs the backend; it runs (and ``prepare()``s) in
        a worker thread.  Concurrent callers with the same fingerprint
        await the same build.  Builder exceptions propagate to every
        waiter and nothing is cached.
        """
        entry = self._lru.get(fingerprint)
        if entry is not None:
            obs.incr("service.cache.hits")
            entry.uses += 1
            return entry, True
        pending = self._preparing.get(fingerprint)
        if pending is not None:
            self.shared += 1
            obs.incr("service.cache.shared")
            entry = await pending
            entry.uses += 1
            return entry, True
        obs.incr("service.cache.misses")
        self.builds += 1
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[TemplateEntry]" = loop.create_future()
        self._preparing[fingerprint] = future
        try:
            t0 = time.perf_counter()
            backend, segment = await asyncio.to_thread(
                _build_in_thread, builder
            )
            prepare_s = time.perf_counter() - t0
            trace = obs.current_trace()
            if trace is not None and segment is not None:
                # merged here, on the event loop, exactly once per build
                trace.merge_segment(**segment)
            entry = TemplateEntry(fingerprint, backend, prepare_s)
            for _ in self._lru.put(fingerprint, entry):
                obs.incr("service.cache.evictions")
            obs.gauge("service.cache.size", len(self._lru))
            future.set_result(entry)
        except BaseException as exc:
            future.set_exception(exc)
            future.exception()  # co-waiters re-raise; avoid the unretrieved log
            raise
        finally:
            self._preparing.pop(fingerprint, None)
        entry.uses += 1
        return entry, False

    def stats(self) -> Dict[str, int]:
        """LRU counters plus the cache's own.

        ``misses`` counts raw LRU lookups that came up empty (a request
        that piggybacks on an in-flight build still logs one); ``builds``
        counts preparations actually run — the number that must equal
        one however many concurrent clients ask for the same model.
        """
        stats = self._lru.stats()
        stats["builds"] = self.builds
        stats["shared"] = self.shared
        stats["preparing"] = len(self._preparing)
        return stats


def _build_in_thread(builder: Callable[[], Any]) -> Tuple[Any, Optional[dict]]:
    """Build + prepare a backend, capturing its spans as one segment.

    Runs inside ``asyncio.to_thread``.  The build records into a private
    trace (never the service trace directly — two concurrent builds of
    *different* templates would interleave writes from two threads) and
    the caller merges the returned segment on the event loop.
    """
    local = obs.Trace("service-prepare") if obs.enabled() else None
    token = obs.activate(local) if local is not None else None
    try:
        with obs.span("service.prepare"):
            backend = builder()
            backend.prepare()
    finally:
        if token is not None:
            obs.deactivate(token)
    segment = None
    if local is not None:
        segment = {
            "spans": local.slice_spans(0),
            "counters": local.drain_counters(),
        }
    return backend, segment
