"""The always-on sweep service daemon.

:class:`SweepService` binds two listeners on construction (so the
addresses are printable before the loop runs) and serves both wire
formats concurrently:

- the **pickle channel** — the distributed layer's length-prefixed
  framing (:mod:`repro.sweep.distributed.protocol`), one connection
  carrying many ``request``/``result`` cycles, exact floats; persistent
  service workers dial into the *same* port with a
  ``hello {role: "service-worker"}`` and are handed to the
  :class:`~repro.sweep.service.pool.WorkerPool`;
- the **HTTP/JSON front end** — ``GET /healthz``, ``GET /stats``,
  ``POST /v1/{sweep,steady,lint}`` with the same request payloads as
  JSON bodies, one request per connection.

Request lifecycle: parse (:class:`RequestError` → ``error``/400) →
admission (:class:`ServiceBusyError` → ``busy``/429,
:class:`ServiceDrainingError` → ``busy``/503) → template via the
single-flight :class:`~repro.sweep.service.template_cache.TemplateCache`
→ solve (through the :class:`~repro.sweep.service.batching.MicroBatcher`
in a thread — concurrent same-template requests coalesce into one
stacked solve, see ``--batch-window-ms`` — or fanned to the worker
pool) → reply.
Every request lands one ``service.request`` span (its segment merged
exactly once), one journal line, and a completed/failed counter.

Drain (:meth:`request_drain`, wired to SIGTERM by the CLI): in-flight
requests finish, waiters and new arrivals get ``busy {draining: true}``,
workers are told to shut down and reaped, listeners close, the journal
flushes — then :meth:`serve_until_drained` returns and the process can
exit 0.
"""

from __future__ import annotations

import asyncio
import json
import logging
import socket
import time
from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.sweep.distributed.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    recv_message,
    send_message,
)
from repro.sweep.nets import DEMO_NETS
from repro.sweep.service.admission import (
    AdmissionController,
    ServiceBusyError,
    ServiceDrainingError,
)
from repro.sweep.service.batching import MicroBatcher, run_traced
from repro.sweep.service.http import (
    HttpError,
    read_request,
    response_bytes,
)
from repro.sweep.service.pool import ServiceWorkerError, WorkerPool
from repro.sweep.service.session import (
    RequestError,
    ServiceRequest,
    build_backend,
    parse_request,
    solve_response,
)
from repro.sweep.service.template_cache import TemplateCache
from repro.verify import lint_net

__all__ = ["SweepService"]

logger = logging.getLogger(__name__)

#: grace between "admission fully drained" and cancelling the idle
#: keep-alive connections — covers the gap where a handler has released
#: its slot but is still writing the reply bytes
_DRAIN_GRACE_S = 0.1


def _bind(host: str, port: int) -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind((host, port))
    # listen immediately: the CLI prints the address before the event
    # loop starts serving, and a client racing that gap should queue in
    # the backlog rather than get ECONNREFUSED
    sock.listen(128)
    return sock


class SweepService:
    """One daemon serving sweeps, steady solves, and lint over two wires."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        http_host: Optional[str] = None,
        http_port: int = 0,
        n_workers: int = 0,
        cache_capacity: int = 8,
        max_inflight: Optional[int] = None,
        max_pending: int = 16,
        max_retries: int = 2,
        journal: Optional[str] = None,
        solve_delay: Optional[float] = None,
        batch_window_ms: float = 0.0,
        worker_fault: Optional[Dict[str, Any]] = None,
    ) -> None:
        self._sock = _bind(host, port)
        self._http_sock = _bind(http_host or host, http_port)
        self.host, self.port = self._sock.getsockname()[:2]
        self.http_host, self.http_port = self._http_sock.getsockname()[:2]
        self.n_workers = int(n_workers)
        self.cache_capacity = int(cache_capacity)
        self.max_inflight = int(max_inflight or (n_workers or 4))
        self.max_pending = int(max_pending)
        self.max_retries = int(max_retries)
        self.journal_path = journal
        self.solve_delay = solve_delay
        self.batch_window_ms = float(batch_window_ms)
        self.worker_fault = worker_fault
        self.batcher = MicroBatcher(
            window_s=self.batch_window_ms / 1000.0,
            solve_delay=solve_delay,
        )
        self.started_at = time.time()
        self.completed = 0
        self.failed = 0
        self.cache = TemplateCache(self.cache_capacity)
        self.admission = AdmissionController(self.max_inflight, self.max_pending)
        self.pool = WorkerPool(
            self.host,
            self.port,
            self.n_workers,
            max_retries=self.max_retries,
            fault=worker_fault,
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._servers: List[asyncio.AbstractServer] = []
        self._connections: "set[asyncio.Task]" = set()
        self._drain_task: Optional[asyncio.Task] = None
        self._drained = asyncio.Event()
        self._journal_file: Any = None

    @property
    def address(self) -> Tuple[str, int]:
        return self.host, self.port

    @property
    def http_address(self) -> Tuple[str, int]:
        return self.http_host, self.http_port

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Start both listeners and (if configured) the worker pool."""
        self._loop = asyncio.get_running_loop()
        self.started_at = time.time()
        if self.journal_path:
            self._journal_file = open(self.journal_path, "a")
            self._journal({"event": "start", "workers": self.n_workers})
        self._servers = [
            await asyncio.start_server(self._handle_pickle, sock=self._sock),
            await asyncio.start_server(self._handle_http, sock=self._http_sock),
        ]
        await self.pool.start()
        logger.info(
            "sweep service on %s:%d (pickle) and %s:%d (http), %d worker(s)",
            self.host, self.port, self.http_host, self.http_port,
            self.n_workers,
        )

    async def __aenter__(self) -> "SweepService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        self.request_drain()
        await self.serve_until_drained()

    def request_drain(self) -> None:
        """Begin a graceful drain (idempotent; callable from sync code on
        the loop thread — signal handlers, ``call_soon_threadsafe``)."""
        if self._loop is None:
            self._drained.set()
            return
        if self._drain_task is None:
            self._drain_task = self._loop.create_task(self._drain())

    async def serve_until_drained(self) -> None:
        """Block until a requested drain has fully completed."""
        await self._drained.wait()

    async def _drain(self) -> None:
        logger.info("drain requested: finishing in-flight work")
        await self.admission.begin_drain()
        await self.admission.wait_drained()
        await self.batcher.drain()
        await asyncio.sleep(_DRAIN_GRACE_S)
        await self.pool.shutdown()
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._journal({"event": "drain", "completed": self.completed,
                       "failed": self.failed})
        if self._journal_file is not None:
            self._journal_file.close()
            self._journal_file = None
        logger.info("drain complete")
        self._drained.set()

    def _journal(self, record: Dict[str, Any]) -> None:
        if self._journal_file is None:
            return
        record = {"ts": round(time.time(), 3), **record}
        self._journal_file.write(json.dumps(record) + "\n")
        self._journal_file.flush()

    # -- request processing ------------------------------------------------

    async def process(self, payload: Any) -> Dict[str, Any]:
        """Execute one request payload; the service's public entry point.

        Returns the ``result`` reply dict.  Raises the typed service
        errors (:class:`RequestError`, :class:`ServiceBusyError`,
        :class:`ServiceDrainingError`, :class:`ServiceWorkerError`) —
        the wire handlers map them to replies/status codes.
        """
        request = parse_request(payload)
        if request.op == "ping":
            return {"kind": "result", "op": "ping", "id": request.id,
                    "ok": True, "draining": self.admission.draining}
        if request.op == "stats":
            return {"kind": "result", "op": "stats", "id": request.id,
                    "stats": self.stats()}
        await self.admission.admit()
        trace = obs.current_trace()
        t0 = trace.now() if trace is not None else 0.0
        status = "ok"
        try:
            if request.op == "lint":
                reply = await self._run_lint(request)
            else:
                reply = await self._run_solve(request)
        except BaseException as exc:
            status = type(exc).__name__
            raise
        finally:
            await self.admission.release()
            if status == "ok":
                self.completed += 1
                obs.incr("service.requests.completed")
            else:
                self.failed += 1
                obs.incr("service.requests.failed")
            if trace is not None:
                trace.add_span(
                    "service.request",
                    t0,
                    trace.now(),
                    op=request.op,
                    fingerprint=request.fingerprint,
                    status=status,
                )
            self._journal({
                "op": request.op,
                "id": request.id,
                "fingerprint": request.fingerprint,
                "status": status,
            })
        return reply

    async def _run_solve(self, request: ServiceRequest) -> Dict[str, Any]:
        assert request.model is not None and request.fingerprint is not None
        spec = request.model
        try:
            entry, hit = await self.cache.get_or_prepare(
                request.fingerprint, lambda: build_backend(spec)
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise RequestError(f"model rejected: {exc}") from exc
        if self.n_workers > 0:
            rows, errors = await self.pool.run_points(request, entry)
        else:
            # the batcher owns the template lock discipline: concurrent
            # same-fingerprint requests coalesce into one stacked solve
            # (with per-request failure isolation) instead of queueing
            # one full solve each behind entry.lock
            rows, errors = await self.batcher.submit(entry, request)
        return solve_response(request, rows, errors, cache_hit=hit)

    async def _run_lint(self, request: ServiceRequest) -> Dict[str, Any]:
        assert request.lint_net is not None
        factory, _ = DEMO_NETS[request.lint_net]
        level = request.lint_level
        max_markings = request.lint_max_markings

        def run() -> Any:
            kwargs = {} if max_markings is None else {"max_markings": max_markings}
            return lint_net(factory(), level=level, **kwargs)

        report, segment = await asyncio.to_thread(run_traced, run, "service-lint")
        trace = obs.current_trace()
        if trace is not None and segment is not None:
            trace.merge_segment(**segment)
        return {
            "kind": "result",
            "op": "lint",
            "id": request.id,
            "net": request.lint_net,
            "level": level,
            "ok": report.ok,
            "facts": list(report.facts),
            "diagnostics": [
                {
                    "code": d.code,
                    "severity": d.severity.name.lower(),
                    "subject": d.subject,
                    "message": d.message,
                    "fix_hint": d.fix_hint,
                }
                for d in report.sorted()
            ],
        }

    async def _process_message(self, payload: Any) -> Dict[str, Any]:
        """Run one request, mapping typed errors to reply messages."""
        request_id = payload.get("id") if isinstance(payload, dict) else None
        try:
            return await self.process(payload)
        except RequestError as exc:
            return {"kind": "error", "code": "bad-request",
                    "message": str(exc), "id": request_id}
        except ServiceDrainingError as exc:
            return {"kind": "busy", "draining": True,
                    "message": str(exc), "id": request_id}
        except ServiceBusyError as exc:
            return {"kind": "busy", "draining": False,
                    "message": str(exc), "id": request_id}
        except ServiceWorkerError as exc:
            return {"kind": "error", "code": "worker",
                    "message": str(exc), "id": request_id}
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            logger.exception("internal error serving a request")
            return {"kind": "error", "code": "internal",
                    "message": f"{type(exc).__name__}: {exc}",
                    "id": request_id}

    # -- pickle channel ----------------------------------------------------

    async def _handle_pickle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._connections.add(task)
        adopted = False
        try:
            message = await recv_message(reader)
            if message.get("kind") == "hello":
                adopted = await self._maybe_adopt(reader, writer, message)
                if adopted:
                    self._connections.discard(task)
                return
            while True:
                if message.get("kind") != "request":
                    await send_message(writer, {
                        "kind": "error", "code": "bad-request",
                        "message": f"expected a request, got "
                                   f"{message.get('kind')!r}",
                    })
                    return
                if message.get("version") != PROTOCOL_VERSION:
                    await send_message(writer, {
                        "kind": "error", "code": "bad-request",
                        "message": f"protocol version "
                                   f"{message.get('version')!r} != "
                                   f"{PROTOCOL_VERSION}",
                    })
                    return
                reply = await self._process_message(message)
                await send_message(writer, reply)
                message = await recv_message(reader)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass  # peer went away — their prerogative, any time
        except ProtocolError as exc:
            obs.incr("service.protocol.rejected")
            try:
                await send_message(writer, {
                    "kind": "error", "code": "bad-request",
                    "message": str(exc),
                })
            except (ConnectionError, OSError):
                pass
        except asyncio.CancelledError:
            pass  # drain is cancelling idle keep-alive connections
        finally:
            self._connections.discard(task)
            if not adopted:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass

    async def _maybe_adopt(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        hello: Dict[str, Any],
    ) -> bool:
        """Handle a ``hello``: adopt a service worker or reject."""
        if hello.get("version") != PROTOCOL_VERSION:
            await send_message(writer, {
                "kind": "reject",
                "message": f"protocol version {hello.get('version')!r} != "
                           f"{PROTOCOL_VERSION}",
            })
            return False
        if hello.get("role") != "service-worker":
            await send_message(writer, {
                "kind": "reject",
                "message": "this port is a sweep service; one-shot workers "
                           "connect to a coordinator (repro-experiments "
                           "sweep --distributed)",
            })
            return False
        await self.pool.adopt(reader, writer, hello)
        return True

    # -- HTTP channel ------------------------------------------------------

    async def _handle_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._connections.add(task)
        try:
            try:
                parsed = await read_request(reader)
                if parsed is None:
                    return
                method, path, _headers, body = parsed
                status, payload = await self._route_http(method, path, body)
            except HttpError as exc:
                obs.incr("service.protocol.rejected")
                writer.write(response_bytes(
                    exc.status, {"error": exc.message}, allow=exc.allow
                ))
            else:
                writer.write(response_bytes(status, payload))
            await writer.drain()
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route_http(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, Any]]:
        if path == "/healthz":
            if method != "GET":
                raise HttpError(405, f"{method} not allowed", allow=("GET",))
            return 200, {"ok": True, "draining": self.admission.draining}
        if path == "/stats":
            if method != "GET":
                raise HttpError(405, f"{method} not allowed", allow=("GET",))
            return 200, {"stats": self.stats()}
        if path in ("/v1/sweep", "/v1/steady", "/v1/lint"):
            if method != "POST":
                raise HttpError(405, f"{method} not allowed", allow=("POST",))
            op = path.rsplit("/", 1)[-1]
            try:
                payload = json.loads(body.decode() or "{}")
            except (ValueError, UnicodeDecodeError) as exc:
                raise HttpError(400, f"invalid JSON body: {exc}") from exc
            if not isinstance(payload, dict):
                raise HttpError(400, "request body must be a JSON object")
            if payload.setdefault("op", op) != op:
                raise HttpError(
                    400, f"op {payload['op']!r} does not match route {path}"
                )
            try:
                return 200, await self.process(payload)
            except RequestError as exc:
                raise HttpError(400, str(exc)) from exc
            except ServiceDrainingError as exc:
                raise HttpError(503, str(exc)) from exc
            except ServiceBusyError as exc:
                raise HttpError(429, str(exc)) from exc
            except ServiceWorkerError as exc:
                raise HttpError(500, str(exc)) from exc
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                logger.exception("internal error serving an HTTP request")
                raise HttpError(
                    500, f"{type(exc).__name__}: {exc}"
                ) from exc
        raise HttpError(404, f"no route {method} {path}")

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        return {
            "uptime_s": round(time.time() - self.started_at, 3),
            "draining": self.admission.draining,
            "inflight": self.admission.inflight,
            "waiting": self.admission.waiting,
            "open_connections": len(self._connections),
            "requests": {"completed": self.completed, "failed": self.failed},
            "cache": self.cache.stats(),
            "batching": self.batcher.stats(),
            "workers": self.pool.stats(),
        }
