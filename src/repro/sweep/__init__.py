"""Batched parameter sweeps over GSPN energy models.

The paper's headline results are all *sweeps* — duty cycles, arrival and
service rates, thresholds — evaluated over the same net structure.  This
package makes those sweeps cheap:

- :class:`~repro.sweep.grid.SweepGrid` — cartesian grids of named rate
  axes, buildable from compact CLI specs (``AR=0.1:2.0:10``);
- :class:`~repro.sweep.runner.SweepRunner` — builds a model backend's
  rate-independent template **once** (reachability graph for GSPNs, stage
  structure + shared symbolic LU for the phase-type expansion), then
  re-binds parameters and re-solves per grid point, optionally fanning
  points out over a process pool;
- :mod:`~repro.sweep.backends` — the model families the runner can drive:
  ``gspn`` (rate rebinding), ``phase-type`` (deterministic-delay CPU
  model, Figure 4/5-style threshold sweeps), ``renewal`` (exact closed
  form), plus the transient metric grammar (``energy@t``,
  ``fraction:active@t``, ``time_to_threshold:0.01``);
- :class:`~repro.sweep.results.SweepResult` — a row-per-point table with
  ASCII rendering, CSV export, argmin/argmax queries, and per-point
  error records (failed points get NaN rows, not aborted sweeps);
- :mod:`~repro.sweep.distributed` — the coordinator/worker layer that
  shards one grid across processes or hosts over an asyncio TCP job
  queue, with requeue-on-worker-death and checkpoint/resume;
- :mod:`~repro.sweep.nets` — demo nets (M/M/1/K, the exponentialised
  Figure 3 CPU) wired into ``repro-experiments sweep``.

Quick example::

    from repro.sweep import SweepGrid, SweepRunner
    from repro.sweep.nets import build_mm1k_net

    runner = SweepRunner(build_mm1k_net(), ["mean_tokens:queue"])
    result = runner.run(SweepGrid({"arrive": [0.5, 1.0, 1.5]}))
    print(result.render(title="M/M/1/K arrival-rate sweep"))
"""

from repro.sweep.backends import (
    BACKEND_NAMES,
    BatchedPhaseTypeBackend,
    GSPNBackend,
    PhaseTypeBackend,
    RenewalBackend,
    SweepBackend,
    make_backend,
)
from repro.sweep.grid import SweepGrid, parse_axis
from repro.sweep.nets import (
    DEMO_NETS,
    build_cpu_gspn_net,
    build_mm1k_net,
    build_wsn_cluster_net,
)
from repro.sweep.results import PointFailure, SweepResult
from repro.sweep.runner import (
    Metric,
    SweepRunner,
    contiguous_chunks,
    evaluate_metric,
    iter_point_rows,
    metric_name,
    solve_point_row,
)

__all__ = [
    "BACKEND_NAMES",
    "BatchedPhaseTypeBackend",
    "DEMO_NETS",
    "GSPNBackend",
    "Metric",
    "PhaseTypeBackend",
    "PointFailure",
    "RenewalBackend",
    "SweepBackend",
    "SweepGrid",
    "SweepResult",
    "SweepRunner",
    "build_cpu_gspn_net",
    "build_mm1k_net",
    "build_wsn_cluster_net",
    "contiguous_chunks",
    "evaluate_metric",
    "iter_point_rows",
    "make_backend",
    "metric_name",
    "parse_axis",
    "solve_point_row",
]
