"""Model backends for the sweep runner.

Any parameterised Markov model family can ride the batched sweep path by
implementing :class:`~repro.sweep.backends.base.SweepBackend` — build the
rate-independent template once (``prepare``), bind a grid point per solve
(``solve``), map metric specs to numbers (``evaluate``).  Three backends
ship:

============  ========================================================
``gspn``      exponential-only Petri nets via ``GSPNSolver`` rate
              rebinding (the original sweep path, now behind the
              protocol)
``phase-type``  the deterministic-delay CPU model, stage-expanded into
              a CTMC with a grid-invariant sparsity pattern and a
              shared symbolic LU — Figure 4/5-style threshold/delay
              sweeps run batched; its ``phase-type-batched`` variant
              (:class:`BatchedPhaseTypeBackend`, CLI ``--batched``)
              solves whole spans of the grid as one block-diagonal
              stacked system — see ``docs/batched.md``
``renewal``   the exact renewal-reward closed form, for ground-truth
              cross-checks of the other two
============  ========================================================
"""

from typing import Any

from repro.sweep.backends.base import (
    CPU_AXIS_ALIASES,
    CPUParamsAxesMixin,
    Metric,
    MetricSpec,
    SweepBackend,
    metric_name,
    parse_metric_spec,
    resolve_cpu_axis,
)
from repro.sweep.backends.batched import BatchedPhaseTypeBackend
from repro.sweep.backends.gspn import GSPNBackend, evaluate_gspn_metric
from repro.sweep.backends.phase_type import (
    PhaseTypeBackend,
    PhaseTypeSweepSolution,
    PhaseTypeTemplate,
)
from repro.sweep.backends.renewal import RenewalBackend, RenewalSweepSolution

__all__ = [
    "BACKEND_NAMES",
    "BatchedPhaseTypeBackend",
    "CPU_AXIS_ALIASES",
    "CPUParamsAxesMixin",
    "GSPNBackend",
    "Metric",
    "MetricSpec",
    "PhaseTypeBackend",
    "PhaseTypeSweepSolution",
    "PhaseTypeTemplate",
    "RenewalBackend",
    "RenewalSweepSolution",
    "SweepBackend",
    "evaluate_gspn_metric",
    "make_backend",
    "metric_name",
    "parse_metric_spec",
    "resolve_cpu_axis",
]

#: CLI-facing registry; ``gspn`` needs a net, the CPU backends take params.
#: ``phase-type`` additionally has a batched variant
#: (``phase-type-batched`` here, ``--batched`` on the CLI) that solves
#: whole spans of the grid as one block-diagonal system.
BACKEND_NAMES = ("gspn", "phase-type", "renewal")


def make_backend(name: str, **kwargs: Any) -> SweepBackend:
    """Instantiate a backend by registry name.

    ``make_backend("gspn", net=..., ...)`` /
    ``make_backend("phase-type", params=..., stages=...)`` /
    ``make_backend("phase-type-batched", params=..., batch_size=...)`` /
    ``make_backend("renewal", params=...)``.
    """
    if name == "gspn":
        return GSPNBackend(**kwargs)
    if name == "phase-type":
        return PhaseTypeBackend(**kwargs)
    if name == "phase-type-batched":
        return BatchedPhaseTypeBackend(**kwargs)
    if name == "renewal":
        return RenewalBackend(**kwargs)
    raise KeyError(
        f"unknown backend {name!r} "
        f"(have: {list(BACKEND_NAMES) + ['phase-type-batched']})"
    )
