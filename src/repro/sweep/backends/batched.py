"""Batched phase-type backend: every grid point in one stacked solve.

The pointwise :class:`~repro.sweep.backends.phase_type.PhaseTypeBackend`
already reduces each grid point to an affine rebinding of one fixed CSC
pattern — ``A.data = A_G @ rate_vec + A_c0`` — followed by one sparse
solve.  That loop still pays per-point Python and SuperLU overhead a
few hundred times per grid.  This backend removes the loop:

- **assemble** every point of a batch at once:
  ``data_stack = rate_stack @ A_G.T + A_c0`` (one GEMM,
  :func:`repro.core.phase_type.stacked_rate_data`), bound into a single
  block-diagonal CSC operator
  (:func:`repro.markov.ctmc.stacked_block_diag`) whose ``k``-th diagonal
  block is bit-identical to the matrix the pointwise path would have
  built for point ``k``;
- **solve** the whole stack in one shot: one ``splu`` of the
  block-diagonal system for the LU regime (fill stays block-local, so
  cost is the sum of the per-block costs minus all the per-call
  overhead), or one batched GMRES with a shared single-block ILU
  preconditioner above the iterative auto threshold
  (:func:`repro.markov.ctmc.batched_gmres_solve`, reusing the
  :class:`~repro.markov.ctmc.SolverCache` the pointwise sweeps warm-start
  through).

Per-point failure isolation survives batching: a singular block makes the
stacked factorisation fail, and the backend then re-solves the batch
block-by-block so only the offending point(s) carry an exception — the
sweep runner turns those into NaN rows + ``PointFailure`` records exactly
as on the pointwise paths.

Batch size is a memory knob, not a correctness knob: ``batch_size="auto"``
budgets ``BATCH_MEMORY_BUDGET`` bytes against the stacked system's
``nnz x 8`` bytes per point (times an LU fill fudge) and chunks the grid
accordingly.  See ``docs/batched.md`` for the derivation, the memory
model, and when this path beats the pool/distributed fan-out.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Tuple, Union

import numpy as np
from scipy import sparse

from repro import obs
from repro.core.params import CPUModelParams
from repro.core.phase_type import stacked_rate_data
from repro.markov.ctmc import (
    _finalize_pi,
    batched_dense_solve,
    batched_gmres_solve,
    batched_lu_solve,
    block_diag_pattern,
    lu_analyse_solve,
    resolve_steady_state_method,
    stacked_block_diag,
)
from repro.sweep.backends.phase_type import (
    _ILU_DROP_TOL,
    _ILU_FILL_FACTOR,
    PhaseTypeBackend,
    PhaseTypeSweepSolution,
    PhaseTypeTemplate,
)

__all__ = ["BatchedPhaseTypeBackend"]

#: Exception types a batched solve records *per point* instead of raising:
#: the same numerical family the runner's pointwise isolation catches
#: (singular chains are ``ValueError``s, ``ConvergenceError`` is a
#: ``RuntimeError``); anything else is a configuration bug and propagates.
_POINT_FAILURE_TYPES = (ValueError, ArithmeticError, RuntimeError)

#: ``auto`` batch sizing: keep one batch's stacked system — data stack,
#: CSC matrix, and the (block-local) LU fill — under this many bytes.
BATCH_MEMORY_BUDGET = 256 * 2**20

#: How much larger than the assembled stack the working set gets once the
#: block-diagonal LU factors land next to it (per-block fill is modest on
#: the narrow-banded stage-expanded chain; 16x is deliberately generous).
LU_FILL_FUDGE = 16

#: Blocks at or below this many states solve as a *dense* ``(B, n, n)``
#: stack through one batched LAPACK ``gesv`` — at these sizes the O(n^3)
#: flops are trivia and sparse factorisations lose to their own
#: per-column bookkeeping.  Above it, the block-diagonal sparse LU (or
#: batched GMRES) takes over.  Measured crossover on the stage-expanded
#: chain sits between n=65 (dense ~2.7x faster) and n=130 (sparse ~2.2x
#: faster).
DENSE_BLOCK_LIMIT = 96


def _finalize_pi_stack(
    x_stack: np.ndarray,
) -> List[Union[np.ndarray, Exception]]:
    """Vectorised :func:`repro.markov.ctmc._finalize_pi` over a block stack.

    The fast path validates and normalises all blocks with whole-stack
    array ops (bit-identical arithmetic to the pointwise helper).  If
    *any* block trips a check, the stack drops to the per-block helper so
    only the offending block(s) carry an exception.
    """
    if np.all(np.isfinite(x_stack)):
        x = np.where(np.abs(x_stack) < 1e-13, 0.0, x_stack)
        if not np.any(x < -1e-9):
            x = np.clip(x, 0.0, None)
            totals = x.sum(axis=1)
            if np.all(np.isfinite(totals) & (totals > 0.0)):
                return list(x / totals[:, None])
    out: List[Union[np.ndarray, Exception]] = []
    for block in x_stack:
        try:
            out.append(_finalize_pi(block))
        except _POINT_FAILURE_TYPES as exc:
            out.append(exc)
    return out


class BatchedPhaseTypeBackend(PhaseTypeBackend):
    """Phase-type sweeps solved one *batch* at a time instead of one point.

    A drop-in :class:`PhaseTypeBackend` (same axes, metrics, solution
    objects, and per-point ``solve`` when something calls it) that
    additionally implements the sweep runner's batch protocol
    (``batch_capable``/:meth:`solve_batch`): the runner hands it spans of
    the grid and gets back one solved solution — or one recorded
    exception — per point.

    Parameters
    ----------
    batch_size : int or "auto"
        Grid points stacked into one block-diagonal solve.  ``"auto"``
        (default) budgets :data:`BATCH_MEMORY_BUDGET` bytes for the
        stacked system; an explicit ``int >= 1`` pins the batch size
        (CLI: ``--batch-size``).  The last batch of a grid is simply
        smaller — batching never changes *which* systems are solved,
        only how many share one factorisation call.
    (remaining parameters)
        As for :class:`PhaseTypeBackend` — ``params``, ``stages``,
        ``stages_powerup``, ``stages_idle``, ``n_max``, ``method``
        (``"power"`` has no stacked form and falls back to pointwise
        solves), ``tol``, ``max_iter``.
    """

    name = "phase-type-batched"
    batch_capable = True

    def __init__(
        self,
        params: Optional[CPUModelParams] = None,
        stages: int = 32,
        stages_powerup: Optional[int] = None,
        stages_idle: Optional[int] = None,
        n_max: Optional[int] = None,
        method: str = "auto",
        tol: Optional[float] = None,
        max_iter: Optional[int] = None,
        batch_size: Union[int, str] = "auto",
    ) -> None:
        super().__init__(
            params,
            stages=stages,
            stages_powerup=stages_powerup,
            stages_idle=stages_idle,
            n_max=n_max,
            method=method,
            tol=tol,
            max_iter=max_iter,
        )
        if batch_size != "auto":
            if not isinstance(batch_size, int) or isinstance(batch_size, bool):
                raise ValueError(
                    f"batch_size must be 'auto' or an int >= 1, "
                    f"got {batch_size!r}"
                )
            if batch_size < 1:
                raise ValueError(
                    f"batch_size must be >= 1, got {batch_size}"
                )
        self.batch_size = batch_size
        # one block-diagonal pattern per distinct block count seen (the
        # full batches of a sweep share one; the tail batch gets its own)
        self._bd_patterns: dict = {}
        # COO view of the CSC pattern, for the dense small-block scatter
        self._dense_scatter: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------ #
    # batch protocol
    # ------------------------------------------------------------------ #
    def resolve_batch_size(self, n_points: int) -> int:
        """Points per stacked solve for an *n_points* sweep.

        An explicit ``batch_size`` is used as-is (clamped to the grid).
        ``"auto"`` divides :data:`BATCH_MEMORY_BUDGET` by the per-point
        footprint of the stacked system — ``nnz`` doubles (the data
        stack and the CSC copy) times :data:`LU_FILL_FUDGE` for the
        factor's block-local fill — so deep-buffer templates batch
        narrower and small ones swallow the whole grid.
        """
        if n_points < 1:
            return 1
        if self.batch_size != "auto":
            return min(int(self.batch_size), n_points)
        tpl = self.prepare()
        per_point = len(tpl.A_c0) * 8 * LU_FILL_FUDGE
        if tpl.n_states <= DENSE_BLOCK_LIMIT:
            # the dense path materialises (B, n, n) plus LAPACK's copy
            per_point = max(per_point, tpl.n_states**2 * 8 * 3)
        return max(1, min(n_points, BATCH_MEMORY_BUDGET // per_point))

    def solve_batch(
        self, points: List[Mapping[str, float]]
    ) -> List[Union[PhaseTypeSweepSolution, Exception]]:
        """Solve one batch of grid points through a single stacked system.

        Returns a list aligned with *points*: a
        :class:`PhaseTypeSweepSolution` per solved point, or the
        numerical exception that felled it (zero-delay parameter points,
        singular blocks, convergence stalls).  Configuration errors —
        unknown axes and the like, which would fail on every point —
        propagate instead.
        """
        tpl = self.prepare()
        results: List[Union[PhaseTypeSweepSolution, Exception, None]] = [
            None
        ] * len(points)
        # bind parameters first; a degenerate point (zero delay) fails
        # alone here and never enters the stack
        bound: List[Tuple[int, CPUModelParams, np.ndarray]] = []
        for pos, point in enumerate(points):
            try:
                params = self._point_params(point)
            except ValueError as exc:
                results[pos] = exc
                continue
            bound.append((pos, params, self._rate_vector(params)))
        if bound:
            method = resolve_steady_state_method(tpl.n_states, self.method)
            if method == "power":
                # power iteration has no stacked form: honest pointwise
                pis = self._solve_pointwise(
                    tpl, [rv for _, _, rv in bound]
                )
            else:
                pis = self._solve_stack(
                    tpl, [rv for _, _, rv in bound], method
                )
            for (pos, params, rate_vec), pi in zip(bound, pis):
                if isinstance(pi, Exception):
                    results[pos] = pi
                else:
                    results[pos] = PhaseTypeSweepSolution(
                        template=tpl,
                        params=params,
                        rate_vec=rate_vec,
                        pi=pi,
                    )
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    # the stacked solves
    # ------------------------------------------------------------------ #
    def _solve_stack(
        self,
        tpl: PhaseTypeTemplate,
        rate_vecs: List[np.ndarray],
        method: str,
    ) -> List[Union[np.ndarray, Exception]]:
        n = tpl.n_states
        n_blocks = len(rate_vecs)
        with obs.span(
            "sweep.assemble", points=n_blocks, nnz=len(tpl.A_c0)
        ):
            data_stack = stacked_rate_data(
                tpl.A_G, tpl.A_c0, np.vstack(rate_vecs)
            )
        b_stack = np.zeros((n_blocks, n))
        b_stack[:, -1] = 1.0
        try:
            if method == "gmres":
                A_bd = self._assemble_stack(
                    tpl.A_indptr, tpl.A_indices, data_stack, permuted=False
                )
                x_stack = self._gmres_stack(
                    tpl, data_stack, A_bd, b_stack
                )
            elif n <= DENSE_BLOCK_LIMIT:
                x_stack = self._dense_stack(tpl, data_stack, b_stack)
            else:
                x_stack = self._lu_stack(tpl, data_stack, b_stack)
        except _POINT_FAILURE_TYPES:
            # the stacked solve fails as a whole (SuperLU names no block;
            # GMRES converges globally or not at all) — fall back to
            # pointwise solves so only the offending point(s) fail
            obs.incr("solver.batch.isolation_fallbacks")
            return self._solve_pointwise(tpl, rate_vecs)
        return _finalize_pi_stack(x_stack)

    def _assemble_stack(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        data_stack: np.ndarray,
        permuted: bool,
    ) -> sparse.csc_matrix:
        """Stacked block-diagonal operator, caching the tiled pattern
        per (block count, permuted?) — the full batches of a sweep share
        one pattern; only the tail batch builds its own."""
        key = (len(data_stack), permuted)
        pattern = self._bd_patterns.get(key)
        if pattern is None:
            pattern = block_diag_pattern(indptr, indices, len(data_stack))
            self._bd_patterns[key] = pattern
        return stacked_block_diag(
            indptr, indices, data_stack, pattern=pattern
        )

    def _dense_stack(
        self,
        tpl: PhaseTypeTemplate,
        data_stack: np.ndarray,
        b_stack: np.ndarray,
    ) -> np.ndarray:
        """Small-block regime: one batched LAPACK call for the whole batch.

        Scatters the batch's CSC data into a ``(B, n, n)`` dense stack
        (one fancy-indexed assignment — the COO view of the pattern is
        computed once per sweep) and solves it through
        :func:`repro.markov.ctmc.batched_dense_solve`: no Python between
        blocks at all.
        """
        n = tpl.n_states
        scatter = self._dense_scatter
        if scatter is None:
            cols = np.repeat(
                np.arange(n, dtype=np.intp), np.diff(tpl.A_indptr)
            )
            scatter = self._dense_scatter = (tpl.A_indices, cols)
        rows, cols = scatter
        A_stack = np.zeros((len(data_stack), n, n))
        A_stack[:, rows, cols] = data_stack
        return batched_dense_solve(A_stack, b_stack)

    def _lu_stack(
        self,
        tpl: PhaseTypeTemplate,
        data_stack: np.ndarray,
        b_stack: np.ndarray,
    ) -> np.ndarray:
        """One SuperLU factorisation for the whole batch.

        Letting ``splu`` run its fill-reducing analysis over the stacked
        matrix would re-discover the same per-block ordering every batch
        — and its cost grows super-linearly in the stack width.  Instead
        the batch reuses the pointwise path's split: one COLAMD analysis
        of a single block per *sweep* (cached under the same
        ``SolverCache`` keys the pointwise backend uses, so the two paths
        share it), then every batch assembles all blocks pre-permuted by
        one fancy-indexed gather and factors with ``ColPerm=NATURAL`` —
        numeric work only, block-local fill.
        """
        n = tpl.n_states
        cache = self._factor_cache
        if "perm_c" not in cache:
            # one representative block pays the symbolic analysis
            A0 = sparse.csc_matrix(
                (data_stack[0], tpl.A_indices, tpl.A_indptr), shape=(n, n)
            )
            _, perm_c = lu_analyse_solve(A0, b_stack[0])
            counts = np.diff(tpl.A_indptr)
            data_map = np.concatenate(
                [
                    np.arange(tpl.A_indptr[p], tpl.A_indptr[p + 1])
                    for p in perm_c
                ]
            )
            perm_indptr = np.zeros(n + 1, dtype=np.intp)
            np.cumsum(counts[perm_c], out=perm_indptr[1:])
            cache.update(
                perm_c=perm_c,
                data_map=data_map,
                perm_indptr=perm_indptr,
                perm_indices=tpl.A_indices[data_map],
            )
        A_bd = self._assemble_stack(
            cache["perm_indptr"],
            cache["perm_indices"],
            data_stack[:, cache["data_map"]],
            permuted=True,
        )
        y_stack = batched_lu_solve(A_bd, b_stack, permc_spec="NATURAL")
        x_stack = np.empty_like(y_stack)
        x_stack[:, cache["perm_c"]] = y_stack
        return x_stack

    def _gmres_stack(
        self,
        tpl: PhaseTypeTemplate,
        data_stack: np.ndarray,
        A_bd: sparse.spmatrix,
        b_stack: np.ndarray,
    ) -> np.ndarray:
        """Batched GMRES with the batch's middle block as shared ILU seed."""
        n = tpl.n_states
        n_blocks = len(b_stack)
        mid = n_blocks // 2
        A_mid = sparse.csc_matrix(
            (data_stack[mid], tpl.A_indices, tpl.A_indptr), shape=(n, n)
        )
        x0_stack = None
        pi0 = self._factor_cache.get("pi0")
        if pi0 is not None and len(pi0) == n:
            # the previous batch's far edge, tiled: on an axis-ordered
            # grid every block of this batch is its near neighbour
            x0_stack = np.tile(pi0, (n_blocks, 1))
        x_stack, _ = batched_gmres_solve(
            A_bd,
            b_stack,
            A_block=A_mid,
            tol=self.tol,
            max_iter=self.max_iter,
            x0_stack=x0_stack,
            cache=self._factor_cache,
            drop_tol=_ILU_DROP_TOL,
            fill_factor=_ILU_FILL_FACTOR,
        )
        return x_stack

    def _solve_pointwise(
        self, tpl: PhaseTypeTemplate, rate_vecs: List[np.ndarray]
    ) -> List[Union[np.ndarray, Exception]]:
        """Per-block fallback: same systems, one at a time.

        Used to isolate failures after a stacked solve dies, and as the
        honest path for ``method="power"``.  Each block either solves —
        identically to the pointwise backend — or records its exception.
        """
        out: List[Union[np.ndarray, Exception]] = []
        for rate_vec in rate_vecs:
            try:
                out.append(self._steady_state(tpl, rate_vec))
            except _POINT_FAILURE_TYPES as exc:
                out.append(exc)
        return out

    # ------------------------------------------------------------------ #
    def reset_solver_state(self) -> None:
        super().reset_solver_state()
        self._bd_patterns.clear()
        self._dense_scatter = None

    def describe(self) -> str:
        solver = resolve_steady_state_method(self.n_states, self.method)
        sizing = (
            "auto-sized batches"
            if self.batch_size == "auto"
            else f"batches of {self.batch_size}"
        )
        return (
            f"{self.n_states} phase-type states "
            f"(k_d={self.k_d}, k_t={self.k_t}, n_max={self.n_max}), "
            f"stacked block-diagonal {solver} solves, {sizing}"
        )
