"""Exact-renewal backend: closed-form steady state for cross-checks.

:class:`~repro.core.exact_renewal.ExactRenewalModel` solves the
deterministic-delay CPU model *exactly* — renewal-reward over regeneration
cycles, no truncation, no stage expansion, microseconds per point.  Behind
the backend protocol it becomes the sweep's ground truth: run the same grid
through ``phase-type`` and ``renewal`` and the difference *is* the Erlang
approximation error (it vanishes as ``stages`` grows — asserted in the
test suite).

The model is closed-form steady state only, so the transient metric family
is deliberately unsupported; asking for ``energy@t`` here raises a
``ValueError`` pointing at the phase-type backend.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from repro.core.exact_renewal import ExactRenewalModel, ExactSteadyState
from repro.core.params import CPUModelParams, STATE_NAMES
from repro.sweep.backends.base import (
    CPUParamsAxesMixin,
    MetricSpec,
    SweepBackend,
)

__all__ = ["RenewalBackend", "RenewalSweepSolution"]


class RenewalSweepSolution:
    """One closed-form point: the exact steady state plus its parameters."""

    def __init__(self, params: CPUModelParams, steady: ExactSteadyState) -> None:
        self.params = params
        self.steady = steady

    def fractions(self):
        return self.steady.fractions()

    def power_mw(self) -> float:
        return self.params.profile.average_power_mw(self.steady.fractions())


class RenewalBackend(CPUParamsAxesMixin, SweepBackend):
    """Sweep the exact renewal-reward solution (closed form, no template).

    Axes match the phase-type backend (``AR``/``SR``/``T``/``D`` and their
    long spellings), so the same :class:`~repro.sweep.grid.SweepGrid` can
    drive both and the result tables line up row for row.

    There is no state space and no linear solve — each point is a few
    scalar formulas — so the backend takes no solver ``method``/``tol``
    knobs; see ``docs/solvers.md`` for where the closed form wins over
    every matrix method.

    Parameters
    ----------
    params : CPUModelParams, optional
        Base parameters (defaults to the paper's); grid points override
        individual fields through the shared CPU axis aliases.
    """

    name = "renewal"
    steady_kinds = (
        "fraction",
        "power",
        "mean_cycle_length",
        "power_down_rate",
        "jobs_per_cycle",
    )
    transient_kinds = ()

    def __init__(self, params: Optional[CPUModelParams] = None) -> None:
        self.params = params if params is not None else CPUModelParams.paper_defaults()

    def _prepare(self) -> CPUModelParams:
        return self.params  # closed form: nothing to amortise

    def solve(self, point: Mapping[str, float]) -> RenewalSweepSolution:
        params = self._point_params(point)
        return RenewalSweepSolution(params, ExactRenewalModel(params).solve())

    def describe(self) -> str:
        return "closed-form renewal-reward model (no state space)"

    # ------------------------------------------------------------------ #
    def _steady_metric(
        self, solution: RenewalSweepSolution, spec: MetricSpec
    ) -> float:
        if spec.kind == "fraction":
            if spec.arg not in STATE_NAMES:
                raise ValueError(
                    f"fraction metric needs a state in {list(STATE_NAMES)}, "
                    f"got {spec.arg!r}"
                )
            return getattr(solution.fractions(), spec.arg)
        if spec.arg is not None:
            raise ValueError(f"metric kind {spec.kind!r} takes no ':' argument")
        if spec.kind == "power":
            return solution.power_mw()
        return getattr(solution.steady, spec.kind)

    def _transient_metric(self, solution: Any, spec: MetricSpec) -> float:
        raise ValueError(
            "the renewal backend is closed-form steady state only; "
            "transient metrics like "
            f"{spec.kind!r} need the phase-type backend"
        )
