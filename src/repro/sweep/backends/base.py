"""The model-backend protocol behind :class:`~repro.sweep.runner.SweepRunner`.

A *sweep backend* packages one parameterised Markov model family so a sweep
can amortise everything rate-independent across a grid:

- :meth:`SweepBackend.prepare` builds the **template** — state space,
  sparsity pattern, absorption probabilities, whatever is expensive and
  does not depend on the swept values — exactly once (idempotent);
- :meth:`SweepBackend.solve` binds one grid point's values to the template
  and returns a solved model (the *solution*);
- :meth:`SweepBackend.evaluate` turns a solution plus a metric spec into a
  number — one result-table cell.

Metric specs are either callables ``solution -> float`` or compact strings
in a shared grammar::

    <kind>                  steady-state, no argument      e.g. power
    <kind>:<arg>            steady-state with an argument  e.g. fraction:idle
    <kind>@<t>              transient at horizon t         e.g. energy@5
    <kind>:<arg>@<t>        transient with an argument     e.g. fraction:idle@5
    time_to_threshold:<f>   transient settling time (no @)

Each backend declares the kinds it supports (``steady_kinds`` /
``transient_kinds``) and raises a ``ValueError`` naming them when handed
anything else, so CLI typos fail with the menu instead of a traceback.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple, Union

__all__ = [
    "CPU_AXIS_ALIASES",
    "CPUParamsAxesMixin",
    "Metric",
    "MetricSpec",
    "SweepBackend",
    "metric_name",
    "parse_metric_spec",
    "resolve_cpu_axis",
]

Metric = Union[str, Callable[[Any], float]]

#: Accepted axis spellings for the CPU-parameter backends (phase-type and
#: exact-renewal), mapped to :class:`repro.core.params.CPUModelParams` fields.
CPU_AXIS_ALIASES: Dict[str, str] = {
    "arrival_rate": "arrival_rate",
    "AR": "arrival_rate",
    "lambda": "arrival_rate",
    "service_rate": "service_rate",
    "SR": "service_rate",
    "mu": "service_rate",
    "power_down_threshold": "power_down_threshold",
    "T": "power_down_threshold",
    "PDT": "power_down_threshold",
    "power_up_delay": "power_up_delay",
    "D": "power_up_delay",
    "PUT": "power_up_delay",
}


def resolve_cpu_axis(name: str) -> str:
    """Canonical ``CPUModelParams`` field for an axis name (or ``KeyError``)."""
    try:
        return CPU_AXIS_ALIASES[name]
    except KeyError:
        raise KeyError(
            f"{name!r} is not a CPU model parameter (have: "
            f"{sorted(set(CPU_AXIS_ALIASES))})"
        ) from None


def metric_name(metric: Metric, index: int = 0) -> str:
    """Column name for *metric* in result tables."""
    if isinstance(metric, str):
        return metric
    return getattr(metric, "__name__", None) or f"metric{index}"


@dataclass(frozen=True)
class MetricSpec:
    """One parsed string metric: ``kind[:arg][@at]``."""

    kind: str
    arg: Optional[str]
    at: Optional[float]  # transient horizon; None for steady-state kinds

    @property
    def is_transient(self) -> bool:
        return self.at is not None or self.kind == "time_to_threshold"


def parse_metric_spec(spec: str) -> MetricSpec:
    """Parse a compact metric string (see module docstring for the grammar)."""
    head, at_sep, tail = spec.rpartition("@")
    if at_sep:
        try:
            at: Optional[float] = float(tail)
        except ValueError:
            raise ValueError(
                f"metric {spec!r}: horizon {tail!r} after '@' must be a number"
            ) from None
        if at < 0.0:
            raise ValueError(f"metric {spec!r}: horizon must be >= 0")
    else:
        head, at = spec, None
    kind, colon, arg = head.partition(":")
    if not kind:
        raise ValueError(f"metric {spec!r}: missing metric kind before ':'")
    if colon and not arg:
        raise ValueError(f"metric {spec!r}: missing argument after ':'")
    return MetricSpec(kind=kind, arg=arg if colon else None, at=at)


class CPUParamsAxesMixin:
    """Axis handling shared by backends parameterised by ``CPUModelParams``.

    Subclasses set ``self.params`` (the base parameters); grid points
    override individual fields through the :data:`CPU_AXIS_ALIASES`
    spellings.  Two axes that alias the *same* field (e.g. ``T`` and
    ``PDT``) are rejected — accepting both would silently drop one.
    """

    params: Any  # CPUModelParams; typed loosely to keep base core-free

    def axis_names(self) -> List[str]:
        return sorted(CPU_AXIS_ALIASES)

    def check_axes(self, names: Iterable[str]) -> None:
        seen: Dict[str, str] = {}
        for name in names:
            canonical = resolve_cpu_axis(name)
            if canonical in seen:
                raise ValueError(
                    f"axes {seen[canonical]!r} and {name!r} both set the "
                    f"CPU parameter {canonical!r}; sweep it under one name"
                )
            seen[canonical] = name

    def _point_params(self, point: Mapping[str, float]) -> Any:
        """Base parameters with one grid point's overrides applied."""
        self.check_axes(point)
        overrides = {resolve_cpu_axis(k): float(v) for k, v in point.items()}
        return replace(self.params, **overrides)


class SweepBackend(abc.ABC):
    """One parameterised model family the sweep runner can drive.

    Subclasses set ``name``, ``steady_kinds`` and ``transient_kinds`` and
    implement the template/solve/metric hooks.  Instances must stay
    picklable (the runner ships them to worker processes once per pool);
    keep any unpicklable per-solve state on the solution objects, or in a
    :class:`~repro.markov.ctmc.SolverCache`, which drops its
    process-local entries (ILU handles and the like) at the pickle
    boundary instead.

    Attributes
    ----------
    name : str
        Registry name, e.g. ``"gspn"`` (what the CLI's ``--model`` takes).
    steady_kinds : tuple of str
        Steady-state metric kinds :meth:`evaluate` accepts.
    transient_kinds : tuple of str
        Transient metric kinds (evaluated with an ``@t`` horizon).

    Notes
    -----
    The lifecycle is: :meth:`prepare` builds the rate-independent
    *template* exactly once (idempotent — state space, sparsity pattern,
    symbolic factorisation analysis); :meth:`solve` binds one grid
    point's values to the template and returns a *solution*;
    :meth:`evaluate` turns a solution plus a metric spec into one
    result-table cell.  Backends with a linear-algebra core additionally
    accept a steady-state solver ``method`` (``"auto"``/``"lu"``/
    ``"gmres"``/``"power"``) — see ``docs/solvers.md`` for the selection
    guide.
    """

    #: registry name, e.g. ``"gspn"``
    name: str = "?"
    #: supported steady-state metric kinds
    steady_kinds: Tuple[str, ...] = ()
    #: supported transient metric kinds (evaluated with an ``@t`` horizon)
    transient_kinds: Tuple[str, ...] = ()
    #: backends that can solve many grid points in one stacked operation
    #: set this ``True`` and implement :meth:`solve_batch` /
    #: :meth:`resolve_batch_size`; every execution path then feeds them
    #: whole spans of the grid instead of single points — serial and pool
    #: directly, the distributed workers as batched ``rows`` wire frames
    #: (protocol v2), and the service by stacking coalesced requests
    batch_capable: bool = False

    _template: Optional[Any] = None

    # ------------------------------------------------------------------ #
    # template lifecycle
    # ------------------------------------------------------------------ #
    def prepare(self) -> Any:
        """Build (once) and return the rate-independent template."""
        if self._template is None:
            self._template = self._prepare()
        return self._template

    @property
    def template(self) -> Any:
        return self.prepare()

    @abc.abstractmethod
    def _prepare(self) -> Any:
        """Construct the template (called at most once)."""

    # ------------------------------------------------------------------ #
    # per-point work
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def solve(self, point: Mapping[str, float]) -> Any:
        """Bind one grid point to the template and solve it."""

    def resolve_batch_size(self, n_points: int) -> int:
        """Points per stacked solve for an *n_points* sweep (batch
        protocol; meaningful only when ``batch_capable``).  The default
        — one — makes the runner fall back to pointwise :meth:`solve`.
        """
        return 1

    def solve_batch(self, points: List[Mapping[str, float]]) -> List[Any]:
        """Solve many grid points in one stacked operation (batch
        protocol).

        Returns a list aligned with *points* whose entries are either a
        solution object (as :meth:`solve` would return) or the
        *exception* that felled that point — batching must preserve the
        runner's per-point failure isolation, so numerical failures are
        recorded in place rather than raised.  Configuration errors
        (unknown axes, malformed specs) still raise: they would fail on
        every point.  Only called when ``batch_capable`` is ``True``.
        """
        raise NotImplementedError(
            f"the {self.name} backend does not batch solves"
        )

    def reset_point_state(self) -> None:
        """Forget state carried from the previously solved point.

        Sweep fan-out hands each worker *contiguous, axis-ordered* chunks
        so iterative warm starts stay adjacent — and calls this at every
        chunk boundary, where the previous solve belongs to a far-away
        grid point.  Backends that warm-start (e.g. through a
        :class:`~repro.markov.ctmc.SolverCache`) drop the previous
        solution here; pattern-level state (symbolic analyses,
        preconditioners) is point-independent and should survive.  The
        default is a no-op.
        """

    # ------------------------------------------------------------------ #
    # axes
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def axis_names(self) -> List[str]:
        """Axis names :meth:`solve` accepts in its point mapping."""

    def check_axes(self, names: Iterable[str]) -> None:
        """Raise ``KeyError`` naming any axis this backend cannot sweep."""
        known = set(self.axis_names())
        unknown = [n for n in names if n not in known]
        if unknown:
            raise KeyError(
                f"grid axes {unknown} are not sweepable by the {self.name} "
                f"backend (have: {sorted(known)})"
            )

    # ------------------------------------------------------------------ #
    # metrics
    # ------------------------------------------------------------------ #
    def evaluate(self, solution: Any, metric: Metric) -> float:
        """Evaluate one metric (callable or compact string) on a solution."""
        if callable(metric):
            return float(metric(solution))
        spec = parse_metric_spec(metric)
        if spec.is_transient:
            if self.transient_kinds and spec.kind not in self.transient_kinds:
                raise ValueError(
                    f"metric {metric!r}: the {self.name} backend supports "
                    f"transient kinds {list(self.transient_kinds)} and "
                    f"steady kinds {list(self.steady_kinds)}"
                )
            # backends without transient kinds raise their own pointer at
            # a backend that has them
            return float(self._transient_metric(solution, spec))
        if spec.kind not in self.steady_kinds:
            raise ValueError(
                f"metric {metric!r}: the {self.name} backend supports "
                f"steady kinds {list(self.steady_kinds)} and transient "
                f"kinds {list(self.transient_kinds)}"
            )
        return float(self._steady_metric(solution, spec))

    @abc.abstractmethod
    def _steady_metric(self, solution: Any, spec: MetricSpec) -> float:
        """Evaluate one steady-state metric kind."""

    def _transient_metric(self, solution: Any, spec: MetricSpec) -> float:
        raise ValueError(
            f"the {self.name} backend has no transient metrics"
        )  # pragma: no cover - overridden where transient_kinds is non-empty

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        """One-line template summary for CLI footers."""
        return f"{self.name} backend"
