"""GSPN rate-rebinding backend: the original sweep path behind the protocol.

The template is a :class:`~repro.petri.ctmc_export.GSPNSolver` — one
reachability exploration, one vanishing-marking elimination, one sparse rate
template — and each grid point costs an ``O(nnz)`` re-assembly plus the
steady-state solve.  Sweep axes are the net's exponential transitions.

Steady-state metrics are the classic GSPN trio (``mean_tokens:<place>``,
``probability_positive:<place>``, ``throughput:<transition>``); the
transient family adds ``mean_tokens:<place>@t`` (expected token count at
time *t*) and ``accumulated_reward:<place>@t`` (token-seconds integrated
over ``[0, t]``), both from the net's initial marking.  Energy-flavoured
transient metrics need per-state power semantics a bare net does not have —
use the phase-type backend for those.

All per-point chains share one sparse-LU symbolic analysis: the solver's
sparsity pattern is rate-independent, so the fill-reducing permutation from
the first solve is reused by every later one (see
:func:`repro.markov.ctmc.sparse_steady_state`).
"""

from __future__ import annotations

from typing import List, Mapping, Optional

import numpy as np

from repro.markov.ctmc import resolve_steady_state_method
from repro.petri.analysis import ReachabilityOptions
from repro.petri.ctmc_export import GSPNSolution, GSPNSolver
from repro.petri.net import PetriNet
from repro.sweep.backends.base import MetricSpec, SweepBackend

__all__ = ["GSPNBackend", "evaluate_gspn_metric"]

_STEADY_KINDS = ("mean_tokens", "probability_positive", "throughput")


def evaluate_gspn_metric(solution: GSPNSolution, metric) -> float:
    """Evaluate one steady-state metric spec against a solved GSPN.

    Kept as a module-level function because it predates the backend
    protocol (``repro.sweep.evaluate_metric`` re-exports it).
    """
    if callable(metric):
        return float(metric(solution))
    kind, sep, arg = metric.partition(":")
    if not sep or kind not in _STEADY_KINDS or not arg:
        raise ValueError(
            f"metric spec must be '<kind>:<name>' with kind in "
            f"{_STEADY_KINDS}, got {metric!r}"
        )
    return float(getattr(solution, kind)(arg))


class GSPNBackend(SweepBackend):
    """Sweep an exponential-only Petri net via rate rebinding.

    Parameters
    ----------
    net : PetriNet
        Exponential-only net; explored once, eagerly (construction *is*
        the prepare step, so errors surface where the net is named).
    options : ReachabilityOptions
        Reachability exploration limits (``max_markings`` bounds the
        state-space exploration).
    ctmc_backend : {"auto", "dense", "sparse"}
        Linear-algebra backend forwarded to every per-point CTMC.
    method : {"auto", "lu", "gmres", "power"}
        Steady-state solver forwarded to every per-point solve (see
        :meth:`repro.markov.ctmc.CTMC.steady_state`).  The iterative
        methods warm-start each grid point from the previous point's
        solution through the solver's shared cache.
    tol : float, optional
        Convergence tolerance of the iterative methods (default
        ``1e-10``); ignored by ``"lu"``.
    max_iter : int, optional
        Iteration budget of the iterative methods; ignored by ``"lu"``.
    """

    name = "gspn"
    steady_kinds = _STEADY_KINDS
    transient_kinds = ("mean_tokens", "accumulated_reward")

    def __init__(
        self,
        net: PetriNet,
        options: ReachabilityOptions = ReachabilityOptions(),
        ctmc_backend: str = "auto",
        method: str = "auto",
        tol: Optional[float] = None,
        max_iter: Optional[int] = None,
    ) -> None:
        resolve_steady_state_method(1, method)  # validate the name eagerly
        self.solver = GSPNSolver(net, options)
        self.ctmc_backend = ctmc_backend
        self.method = method
        self.tol = tol
        self.max_iter = max_iter
        self._place_names = tuple(self.solver.markings[0].place_names)

    def _prepare(self) -> GSPNSolver:
        return self.solver

    def solve(self, point: Mapping[str, float]) -> GSPNSolution:
        return self.solver.solve(
            rates=point,
            backend=self.ctmc_backend,
            method=self.method,
            tol=self.tol,
            max_iter=self.max_iter,
        )

    def axis_names(self) -> List[str]:
        return self.solver.exponential_transitions

    def reset_point_state(self) -> None:
        self.solver.reset_warm_start()

    @property
    def n_states(self) -> int:
        return self.solver.n

    def describe(self) -> str:
        solver = resolve_steady_state_method(self.solver.n, self.method)
        return (
            f"{self.solver.n} tangible markings, graph explored once, "
            f"{solver} steady state"
        )

    # ------------------------------------------------------------------ #
    def _steady_metric(self, solution: GSPNSolution, spec: MetricSpec) -> float:
        if spec.arg is None:
            raise ValueError(
                f"metric kind {spec.kind!r} needs an argument, e.g. "
                f"'{spec.kind}:<name>'"
            )
        return float(getattr(solution, spec.kind)(spec.arg))

    def _token_rewards(self, solution: GSPNSolution, place: str) -> np.ndarray:
        if place not in self._place_names:
            raise KeyError(
                f"unknown place {place!r} (have: {sorted(self._place_names)})"
            )
        return np.array(
            [float(m[place]) for m in solution.tangible_markings]
        )

    def _transient_metric(self, solution: GSPNSolution, spec: MetricSpec) -> float:
        if spec.arg is None:
            raise ValueError(
                f"transient metric kind {spec.kind!r} needs a place, e.g. "
                f"'{spec.kind}:<place>@{spec.at}'"
            )
        rewards = self._token_rewards(solution, spec.arg)
        assert spec.at is not None
        if spec.kind == "mean_tokens":
            pt = solution.ctmc.transient(solution.initial_distribution, spec.at)
            return float(pt @ rewards)
        # accumulated_reward: token-seconds over [0, t]
        return float(solution.accumulated_reward(rewards, spec.at))
