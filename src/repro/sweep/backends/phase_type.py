"""Phase-type backend: sweep the deterministic-delay CPU model analytically.

The paper's headline figures (4/5) sweep the *deterministic-delay* model —
constant Power Down Threshold ``T`` and Power Up Delay ``D`` — which is not
a CTMC.  The stage expansion in :mod:`repro.core.phase_type` makes it one
(each constant delay becomes an Erlang-``k`` chain of exponential stages),
and crucially the expanded chain's **sparsity pattern is rate-independent**:
sweeping λ, μ, ``T`` or ``D`` only rescales the four symbolic rate slots of
:func:`repro.core.phase_type.build_stage_structure`, never which entries
are non-zero.  This backend exploits that the same way ``GSPNSolver``
exploits rate rebinding:

- **prepare** (once): build the stage structure, sort the COO triplets into
  a fixed CSR pattern, and precompute the per-state collapse vectors
  (state-kind masks, job counts, power draws);
- **solve** (per point): fill the CSR data slot — ``rate_vec[rate_ids]``,
  a vectorised gather — assemble the generator in ``O(nnz)``, and solve
  steady state through the shared symbolic LU
  (:func:`repro.markov.ctmc.sparse_steady_state`), so the fill-reducing
  analysis is paid once per sweep.

Steady metrics: ``fraction:<state>`` (idle/standby/powerup/active),
``power`` (mW), ``mean_jobs``, ``truncation_mass``.  Transient metrics
start from standby (the deployed-node initial state) and use the CTMC
uniformization machinery: ``energy@t`` (joules over ``[0, t]``),
``accumulated_reward:<reward>@t`` (reward-seconds; rewards: ``power``,
``jobs``, or a state name's indicator), ``fraction:<state>@t``
(instantaneous occupancy), and ``time_to_threshold:<frac>`` (first time the
expected power settles within *frac*, relatively, of the steady-state
power — the horizon after which ``power x time`` is a valid energy
approximation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np
from scipy import sparse

from repro import obs
from repro.core.exact_renewal import ExactRenewalModel
from repro.core.params import CPUModelParams, STATE_NAMES, StateFractions
from repro.core.phase_type import (
    PhaseTypeModel,
    build_stage_structure,
    stage_rate_vector,
    state_power_vector,
)
from repro.markov.ctmc import (
    CTMC,
    SolverCache,
    _finalize_pi,
    gmres_augmented_solve,
    lu_analyse_solve,
    lu_resolve_permuted,
    power_steady_state,
    resolve_steady_state_method,
)
from repro.sweep.backends.base import (
    CPUParamsAxesMixin,
    MetricSpec,
    SweepBackend,
)

__all__ = ["PhaseTypeBackend", "PhaseTypeSweepSolution", "PhaseTypeTemplate"]

#: stage-structure state kinds -> canonical StateFractions names
_KIND_TO_STATE = {"busy": "active", "powerup": "powerup", "standby": "standby", "idle": "idle"}

#: ILU strength for the GMRES path.  The stage-expanded chain is
#: narrow-banded in its natural state order, so a *strong* incomplete
#: factorisation stays cheap to build (unlike on lattice-like reachability
#: graphs, where ``repro.markov.ctmc``'s weak defaults are the right call)
#: and pays for itself across a warm-started grid: per-point solves drop
#: to a handful of iterations.
_ILU_DROP_TOL = 1e-5
_ILU_FILL_FACTOR = 20


@dataclass(frozen=True)
class PhaseTypeTemplate:
    """Everything rate-independent about one stage-expanded chain family."""

    states: List[Tuple]
    n_states: int
    # fixed CSR pattern of the off-diagonal generator
    indptr: np.ndarray
    indices: np.ndarray
    rate_pick: np.ndarray  # CSR-ordered symbolic rate ids
    # fixed CSC pattern of the augmented steady-state system
    # (Q^T with its last balance row replaced by the normalisation row);
    # per-point numbers are the affine map  A.data = A_G @ rate_vec + A_c0
    A_indptr: np.ndarray
    A_indices: np.ndarray
    A_G: np.ndarray  # (nnz_A, 4) symbolic-rate coefficients
    A_c0: np.ndarray  # (nnz_A,) constant part (the normalisation row)
    # collapse vectors
    kind_masks: Dict[str, np.ndarray]  # state name -> {0,1} occupancy mask
    jobs: np.ndarray  # jobs in system per state
    trunc_mask: np.ndarray  # states at the truncation level
    power_mw: np.ndarray  # per-state power draw
    p0: np.ndarray  # initial distribution (all mass on standby)


@dataclass
class PhaseTypeSweepSolution:
    """One solved grid point: stationary vector plus transient machinery."""

    template: PhaseTypeTemplate
    params: CPUModelParams
    rate_vec: np.ndarray  # concrete values of the four symbolic rate slots
    pi: np.ndarray
    _Q: Optional[sparse.csr_matrix] = field(default=None, repr=False)
    _ctmc: Optional[CTMC] = field(default=None, repr=False)

    @property
    def Q(self) -> sparse.csr_matrix:
        """The point's generator (built lazily; steady metrics skip it)."""
        if self._Q is None:
            tpl = self.template
            data = self.rate_vec[tpl.rate_pick]
            off = sparse.csr_matrix(
                (data, tpl.indices, tpl.indptr),
                shape=(tpl.n_states, tpl.n_states),
            )
            exit_rates = np.asarray(off.sum(axis=1)).ravel()
            self._Q = (off - sparse.diags(exit_rates)).tocsr()
        return self._Q

    @property
    def ctmc(self) -> CTMC:
        """The point's CTMC (built lazily; only transient metrics need it)."""
        if self._ctmc is None:
            self._ctmc = CTMC(self.Q, backend="sparse")
            self._ctmc.seed_steady_state(self.pi)  # already solved; share it
        return self._ctmc

    def fractions(self) -> StateFractions:
        masks = self.template.kind_masks
        return StateFractions(
            **{name: float(self.pi @ masks[name]) for name in STATE_NAMES}
        )

    def power_mw(self) -> float:
        """Steady-state average power draw in milliwatts."""
        return float(self.pi @ self.template.power_mw)

    def mean_jobs(self) -> float:
        return float(self.pi @ self.template.jobs)

    def truncation_mass(self) -> float:
        return float(self.pi @ self.template.trunc_mask)


class PhaseTypeBackend(CPUParamsAxesMixin, SweepBackend):
    """Sweep the Erlang-stage expansion of the deterministic-delay model.

    Parameters
    ----------
    params : CPUModelParams, optional
        Base parameters (defaults to the paper's); grid points override
        individual fields (axes: ``arrival_rate``/``AR``,
        ``service_rate``/``SR``, ``power_down_threshold``/``T``/``PDT``,
        ``power_up_delay``/``D``/``PUT``).  Both deterministic delays must
        be positive — the stage structure needs their state blocks to
        exist at every grid point.
    stages : int
        Erlang stage count per deterministic delay (accuracy knob; the
        approximation error vanishes as it grows — see
        ``PhaseTypeModel``).
    stages_powerup, stages_idle : int, optional
        Per-delay overrides of *stages* for the power-up delay ``D`` and
        the idle threshold ``T`` respectively.
    n_max : int, optional
        Queue truncation level, **fixed across the whole grid** so the
        sparsity pattern is too; defaults to ``PhaseTypeModel``'s choice
        for the base parameters.  When sweeping toward heavier load, pass
        an ``n_max`` sized for the heaviest point and check the
        ``truncation_mass`` metric stays negligible.  State count grows
        as ``1 + stages * n_max + n_max + stages`` — deep buffers are
        exactly where the iterative solvers earn their keep.
    method : {"auto", "lu", "gmres", "power"}
        Steady-state solver (see
        :meth:`repro.markov.ctmc.CTMC.steady_state`).  ``"lu"`` runs the
        affine-map symbolic-LU path; the iterative methods warm-start
        each grid point from the previous point's solution and share one
        ILU preconditioner across the grid.  ``"auto"`` picks by state
        count (LU up to 20 000 states, then GMRES).
    tol : float, optional
        Convergence tolerance of the iterative methods (default
        ``1e-10``); ignored by ``"lu"``.
    max_iter : int, optional
        Iteration budget of the iterative methods; ignored by ``"lu"``.
    """

    name = "phase-type"
    steady_kinds = ("fraction", "power", "mean_jobs", "truncation_mass")
    transient_kinds = (
        "energy",
        "accumulated_reward",
        "fraction",
        "time_to_threshold",
    )

    def __init__(
        self,
        params: Optional[CPUModelParams] = None,
        stages: int = 32,
        stages_powerup: Optional[int] = None,
        stages_idle: Optional[int] = None,
        n_max: Optional[int] = None,
        method: str = "auto",
        tol: Optional[float] = None,
        max_iter: Optional[int] = None,
    ) -> None:
        resolve_steady_state_method(1, method)  # validate the name eagerly
        if params is None:
            params = CPUModelParams.paper_defaults()
        if params.power_up_delay <= 0.0 or params.power_down_threshold <= 0.0:
            raise ValueError(
                "the phase-type backend needs power_up_delay > 0 and "
                "power_down_threshold > 0 (a zero delay removes its state "
                "block and changes the sparsity pattern; use the gspn or "
                "renewal backend for degenerate delays)"
            )
        # reuse PhaseTypeModel for stage/truncation normalisation
        model = PhaseTypeModel(
            params,
            stages=stages,
            stages_powerup=stages_powerup,
            stages_idle=stages_idle,
            n_max=n_max,
        )
        self.params = params
        self.k_d = model.k_d
        self.k_t = model.k_t
        self.n_max = model.n_max
        self.method = method
        self.tol = tol
        self.max_iter = max_iter
        self._factor_cache: SolverCache = SolverCache()
        self._A_perm: Optional[sparse.csc_matrix] = None

    # ------------------------------------------------------------------ #
    def _prepare(self) -> PhaseTypeTemplate:
        with obs.span("prepare.stage_expansion") as sp:
            states, _, rows, cols, rate_ids = build_stage_structure(
                self.k_d, self.k_t, self.n_max, True, True
            )
            sp.set("states", len(states))
        n = len(states)
        order = np.lexsort((cols, rows))
        rows, cols, rate_ids = rows[order], cols[order], rate_ids[order]
        # the structure emits each (src, dst) edge once; the CSR data slot
        # can therefore be filled by a pure gather, no duplicate summing
        dup = (rows[1:] == rows[:-1]) & (cols[1:] == cols[:-1])
        assert not dup.any(), "stage structure emitted duplicate edges"
        indptr = np.zeros(n + 1, dtype=np.intp)
        np.cumsum(np.bincount(rows, minlength=n), out=indptr[1:])

        A_indptr, A_indices, A_G, A_c0 = self._augmented_pattern(
            n, rows, cols, rate_ids
        )

        kind_masks = {
            name: np.zeros(n) for name in STATE_NAMES
        }
        jobs = np.zeros(n)
        trunc = np.zeros(n)
        for i, s in enumerate(states):
            kind_masks[_KIND_TO_STATE[s[0]]][i] = 1.0
            if s[0] in ("powerup", "busy"):
                jobs[i] = s[-1]
                if s[-1] == self.n_max:
                    trunc[i] = 1.0
        p0 = np.zeros(n)
        p0[0] = 1.0  # ("standby",) is always state 0
        return PhaseTypeTemplate(
            states=states,
            n_states=n,
            indptr=indptr,
            indices=cols,
            rate_pick=rate_ids,
            A_indptr=A_indptr,
            A_indices=A_indices,
            A_G=A_G,
            A_c0=A_c0,
            kind_masks=kind_masks,
            jobs=jobs,
            trunc_mask=trunc,
            power_mw=state_power_vector(states, self.params.profile),
            p0=p0,
        )

    @staticmethod
    def _augmented_pattern(
        n: int, rows: np.ndarray, cols: np.ndarray, rate_ids: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """CSC pattern + affine data map of the steady-state system.

        The system is ``A = [Q^T without its last row; ones]``.  Every
        entry of ``A`` is an affine function of the four symbolic rates:
        off-diagonal generator entries carry exactly one rate, diagonal
        entries carry minus the sum of their row's exit rates, and the
        normalisation row is the constant 1 — so the per-point numbers
        collapse to ``A.data = A_G @ rate_vec + A_c0``, one tiny GEMV.
        """
        # triplets (row, col, rate slot, coefficient) of A
        off = cols != n - 1  # Q^T entries, minus the replaced last row
        diag = rows != n - 1  # exit-rate contributions to Q^T's diagonal
        t_rows = np.concatenate([cols[off], rows[diag], np.full(n, n - 1)])
        t_cols = np.concatenate([rows[off], rows[diag], np.arange(n)])
        t_slot = np.concatenate(
            [rate_ids[off], rate_ids[diag], np.full(n, -1)]
        )
        t_coeff = np.concatenate(
            [np.ones(off.sum()), -np.ones(diag.sum()), np.ones(n)]
        )

        order = np.lexsort((t_rows, t_cols))  # CSC: by column, then row
        t_rows, t_cols = t_rows[order], t_cols[order]
        t_slot, t_coeff = t_slot[order], t_coeff[order]
        new_group = np.ones(len(t_rows), dtype=bool)
        new_group[1:] = (t_cols[1:] != t_cols[:-1]) | (t_rows[1:] != t_rows[:-1])
        group = np.cumsum(new_group) - 1
        nnz = int(group[-1]) + 1

        A_indices = t_rows[new_group]
        entry_cols = t_cols[new_group]
        A_indptr = np.zeros(n + 1, dtype=np.intp)
        np.cumsum(np.bincount(entry_cols, minlength=n), out=A_indptr[1:])

        A_G = np.zeros((nnz, 4))
        A_c0 = np.zeros(nnz)
        symbolic = t_slot >= 0
        np.add.at(
            A_G, (group[symbolic], t_slot[symbolic]), t_coeff[symbolic]
        )
        np.add.at(A_c0, group[~symbolic], t_coeff[~symbolic])
        return A_indptr, A_indices, A_G, A_c0

    def _point_params(self, point: Mapping[str, float]) -> CPUModelParams:
        params = super()._point_params(point)
        if params.power_up_delay <= 0.0 or params.power_down_threshold <= 0.0:
            raise ValueError(
                f"phase-type sweep points need power_up_delay > 0 and "
                f"power_down_threshold > 0 (got D={params.power_up_delay}, "
                f"T={params.power_down_threshold}); a zero delay drops its "
                "state block — use the renewal backend for degenerate points"
            )
        return params

    def _rate_vector(self, params: CPUModelParams) -> np.ndarray:
        return stage_rate_vector(params, self.k_d, self.k_t)

    def solve(self, point: Mapping[str, float]) -> PhaseTypeSweepSolution:
        tpl = self.prepare()
        params = self._point_params(point)
        rate_vec = self._rate_vector(params)
        pi = self._steady_state(tpl, rate_vec)
        return PhaseTypeSweepSolution(
            template=tpl,
            params=params,
            rate_vec=rate_vec,
            pi=pi,
        )

    def _steady_state(
        self, tpl: PhaseTypeTemplate, rate_vec: np.ndarray
    ) -> np.ndarray:
        """Solve ``pi Q = 0`` through the template's fixed CSC system.

        Dispatches on the backend's ``method``: the LU path below, or the
        iterative solvers (GMRES on the same augmented CSC system, power
        iteration on the generator), which warm-start from the previous
        grid point's solution held in the shared cache.
        """
        method = resolve_steady_state_method(tpl.n_states, self.method)
        if method == "gmres":
            return self._gmres_steady_state(tpl, rate_vec)
        if method == "power":
            return self._power_steady_state(tpl, rate_vec)
        return self._lu_steady_state(tpl, rate_vec)

    def _gmres_steady_state(
        self, tpl: PhaseTypeTemplate, rate_vec: np.ndarray
    ) -> np.ndarray:
        """ILU-GMRES on the affine-map augmented system (no permutation)."""
        n = tpl.n_states
        A = sparse.csc_matrix(
            (tpl.A_G @ rate_vec + tpl.A_c0, tpl.A_indices, tpl.A_indptr),
            shape=(n, n),
        )
        b = np.zeros(n)
        b[-1] = 1.0
        x, _ = gmres_augmented_solve(
            A,
            b,
            tol=self.tol,
            max_iter=self.max_iter,
            cache=self._factor_cache,
            drop_tol=_ILU_DROP_TOL,
            fill_factor=_ILU_FILL_FACTOR,
        )
        return _finalize_pi(x)

    def _power_steady_state(
        self, tpl: PhaseTypeTemplate, rate_vec: np.ndarray
    ) -> np.ndarray:
        """Power iteration on the uniformized point generator."""
        n = tpl.n_states
        off = sparse.csr_matrix(
            (rate_vec[tpl.rate_pick], tpl.indices, tpl.indptr), shape=(n, n)
        )
        exit_rates = np.asarray(off.sum(axis=1)).ravel()
        Q = (off - sparse.diags(exit_rates)).tocsr()
        return power_steady_state(
            Q,
            tol=self.tol,
            max_iter=self.max_iter,
            cache=self._factor_cache,
        )

    def _lu_steady_state(
        self, tpl: PhaseTypeTemplate, rate_vec: np.ndarray
    ) -> np.ndarray:
        """Direct solve through the shared symbolic LU.

        The first point pays the symbolic COLAMD analysis and caches both
        the column permutation and the data-slot shuffle that applies it;
        every later point reassembles pre-permuted in ``O(nnz)`` and
        factors with ``ColPerm=NATURAL`` — numeric work only.
        """
        n = tpl.n_states
        data = tpl.A_G @ rate_vec + tpl.A_c0
        b = np.zeros(n)
        b[-1] = 1.0
        cache = self._factor_cache
        if "perm_c" not in cache:
            A = sparse.csc_matrix(
                (data, tpl.A_indices, tpl.A_indptr), shape=(n, n)
            )
            pi, perm_c = lu_analyse_solve(A, b)
            # data-slot view of the column permutation, so later points
            # can assemble A[:, perm_c] by pure gathers
            counts = np.diff(tpl.A_indptr)
            data_map = np.concatenate(
                [
                    np.arange(tpl.A_indptr[p], tpl.A_indptr[p + 1])
                    for p in perm_c
                ]
            )
            perm_indptr = np.zeros(n + 1, dtype=np.intp)
            np.cumsum(counts[perm_c], out=perm_indptr[1:])
            cache.update(
                perm_c=perm_c,
                data_map=data_map,
                perm_indptr=perm_indptr,
                perm_indices=tpl.A_indices[data_map],
            )
        else:
            A = self._permuted_system(n)
            A.data[:] = data[cache["data_map"]]
            pi = lu_resolve_permuted(A, b, cache["perm_c"])
        return _finalize_pi(pi)

    def _permuted_system(self, n: int) -> sparse.csc_matrix:
        """The reusable pre-permuted matrix object (data overwritten
        per point; ``splu`` copies what it needs, so sharing is safe)."""
        if self._A_perm is None:
            cache = self._factor_cache
            self._A_perm = sparse.csc_matrix(
                (
                    np.empty(len(cache["data_map"])),
                    cache["perm_indices"],
                    cache["perm_indptr"],
                ),
                shape=(n, n),
            )
        return self._A_perm

    def reset_point_state(self) -> None:
        """Drop the previous point's warm start (chunk-boundary hook).

        The symbolic LU analysis, the data-slot permutation, and the ILU
        preconditioner are rate-independent and survive; only the
        iterative methods' starting vector is forgotten.
        """
        self._factor_cache.drop_warm_start()

    def reset_solver_state(self) -> None:
        """Drop warm starts and cached factorisations (force cold solves).

        The next solve pays the full symbolic analysis / preconditioner
        build again — what a sweep amortises.  Mainly for benchmarks and
        tests that compare warm against cold iteration.
        """
        self._factor_cache.clear()
        self._A_perm = None

    @property
    def n_states(self) -> int:
        return self.prepare().n_states

    def describe(self) -> str:
        solver = resolve_steady_state_method(self.n_states, self.method)
        return (
            f"{self.n_states} phase-type states "
            f"(k_d={self.k_d}, k_t={self.k_t}, n_max={self.n_max}), "
            f"structure built once, {solver} steady state"
        )

    # ------------------------------------------------------------------ #
    def _steady_metric(
        self, solution: PhaseTypeSweepSolution, spec: MetricSpec
    ) -> float:
        if spec.kind == "fraction":
            return getattr(self._fractions_of(solution, spec), spec.arg)
        if spec.arg is not None:
            raise ValueError(
                f"metric kind {spec.kind!r} takes no ':' argument"
            )
        if spec.kind == "power":
            return solution.power_mw()
        if spec.kind == "mean_jobs":
            return solution.mean_jobs()
        return solution.truncation_mass()

    def _fractions_of(
        self, solution: PhaseTypeSweepSolution, spec: MetricSpec
    ) -> StateFractions:
        if spec.arg not in STATE_NAMES:
            raise ValueError(
                f"fraction metric needs a state in {list(STATE_NAMES)}, "
                f"got {spec.arg!r}"
            )
        return solution.fractions()

    def _reward_vector(
        self, solution: PhaseTypeSweepSolution, name: str
    ) -> np.ndarray:
        tpl = solution.template
        if name == "power":
            return tpl.power_mw
        if name == "jobs":
            return tpl.jobs
        if name in STATE_NAMES:
            return tpl.kind_masks[name]
        raise ValueError(
            f"unknown reward {name!r} (have: power, jobs, "
            f"{', '.join(STATE_NAMES)})"
        )

    def _transient_metric(
        self, solution: PhaseTypeSweepSolution, spec: MetricSpec
    ) -> float:
        tpl = solution.template
        if spec.kind == "time_to_threshold":
            return self._time_to_threshold(solution, spec)
        assert spec.at is not None
        if spec.kind == "energy":
            if spec.arg is not None:
                raise ValueError("energy@t takes no ':' argument")
            # mW integrated over seconds -> millijoules -> joules
            mws = solution.ctmc.accumulated_reward(tpl.p0, tpl.power_mw, spec.at)
            return mws / 1000.0
        if spec.kind == "fraction":
            if spec.arg not in STATE_NAMES:
                raise ValueError(
                    f"fraction metric needs a state in {list(STATE_NAMES)}, "
                    f"got {spec.arg!r}"
                )
            pt = solution.ctmc.transient(tpl.p0, spec.at)
            return float(pt @ tpl.kind_masks[spec.arg])
        # accumulated_reward:<reward>@t
        if spec.arg is None:
            raise ValueError(
                "accumulated_reward needs a reward, e.g. "
                f"'accumulated_reward:power@{spec.at}'"
            )
        rewards = self._reward_vector(solution, spec.arg)
        return float(solution.ctmc.accumulated_reward(tpl.p0, rewards, spec.at))

    def _time_to_threshold(
        self, solution: PhaseTypeSweepSolution, spec: MetricSpec
    ) -> float:
        """First time the expected power is within ``frac`` of steady state.

        Walks the transient forward in increments of 1/64th of the mean
        regeneration cycle and returns the first crossing time (0.0 when
        the chain starts inside the band, ``inf`` when it never settles
        within the 32-cycle search window).
        """
        try:
            frac = float(spec.arg) if spec.arg is not None else float("nan")
        except ValueError:
            frac = float("nan")
        if not (frac > 0.0 and math.isfinite(frac)):
            raise ValueError(
                "time_to_threshold needs a positive relative tolerance, "
                f"e.g. 'time_to_threshold:0.01'; got {spec.arg!r}"
            )
        tpl = solution.template
        power_ss = solution.power_mw()
        cycle = ExactRenewalModel(solution.params).solve().mean_cycle_length
        if not math.isfinite(cycle):
            cycle = 10.0 / solution.params.arrival_rate
        band = frac * abs(power_ss)
        p = tpl.p0
        if abs(float(p @ tpl.power_mw) - power_ss) <= band:
            return 0.0
        h = cycle / 64.0
        t = 0.0
        for _ in range(64 * 32):
            p = solution.ctmc.advance(p, h)
            t += h
            if abs(float(p @ tpl.power_mw) - power_ss) <= band:
                return t
        return math.inf
