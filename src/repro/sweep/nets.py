"""Demo GSPNs for the sweep CLI and examples.

Two exponential-only seed nets:

- ``mm1k`` — the M/M/1/K queue as a two-place net (the same net the CTMC
  export is validated against in the test suite), scaled up so sweeps have
  a non-trivial state space;
- ``cpu-gspn`` — the paper's Figure 3 CPU net with its two deterministic
  transitions (PDT, PUT) replaced by exponentials of the same mean.  This
  is the "naive Markov" baseline (Erlang-1 phase-type) of the paper's
  Section 4.1 discussion: solvable exactly as a GSPN, so rate sweeps over
  arrival/service/threshold rates run through the batched analytical path.

Each registry entry carries default sweep metrics so the CLI can run a
meaningful sweep with nothing but ``--net`` and ``--rate``.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.core.params import CPUModelParams
from repro.core.petri_cpu import build_cpu_net
from repro.des.distributions import Exponential
from repro.petri.net import PetriNet
from repro.petri.transitions import TimedTransition

__all__ = ["build_mm1k_net", "build_cpu_gspn_net", "DEMO_NETS"]


def build_mm1k_net(lam: float = 1.0, mu: float = 2.0, K: int = 40) -> PetriNet:
    """M/M/1/K as a GSPN: ``free`` seats and a ``queue`` place."""
    net = PetriNet("mm1k")
    net.add_place("free", initial=K)
    net.add_place("queue")
    net.add_timed_transition("arrive", Exponential(lam))
    net.add_input_arc("free", "arrive")
    net.add_output_arc("arrive", "queue")
    net.add_timed_transition("serve", Exponential(mu))
    net.add_input_arc("queue", "serve")
    net.add_output_arc("serve", "free")
    return net


def build_cpu_gspn_net(
    params: Optional[CPUModelParams] = None, buffer_capacity: int = 25
) -> PetriNet:
    """Figure 3 CPU net with deterministic delays made exponential.

    PDT's constant idle threshold ``T`` becomes ``Exponential(1/T)`` and
    PUT's constant wake-up delay ``D`` becomes ``Exponential(1/D)`` — the
    Erlang-1 approximation.  The result is exponential-only, hence exactly
    solvable via :class:`repro.petri.ctmc_export.GSPNSolver`, and its
    ``PDT``/``PUT`` rates are sweepable axes (sweeping ``PDT``'s rate is
    sweeping the *mean* power-down threshold ``1/rate``).  ``CPU_Buffer``
    is bounded at *buffer_capacity* so the reachability graph is finite.
    """
    if params is None:
        params = CPUModelParams.paper_defaults(T=0.3, D=0.001)
    net = build_cpu_net(params, buffer_capacity=buffer_capacity)
    # swap the two deterministic timers before the net is ever compiled
    for name, mean in (
        ("PDT", max(params.power_down_threshold, 1e-9)),
        ("PUT", max(params.power_up_delay, 1e-9)),
    ):
        trans = net.transition(name)
        assert isinstance(trans, TimedTransition)
        trans.distribution = Exponential(1.0 / mean)
    return net


#: name -> (net factory, default sweep metrics)
DEMO_NETS: Dict[str, Tuple[Callable[[], PetriNet], Tuple[str, ...]]] = {
    "mm1k": (
        build_mm1k_net,
        ("mean_tokens:queue", "probability_positive:queue", "throughput:serve"),
    ),
    "cpu-gspn": (
        build_cpu_gspn_net,
        ("mean_tokens:Active", "mean_tokens:Stand_By", "throughput:SR"),
    ),
}
