"""Demo GSPNs for the sweep CLI and examples.

Three exponential-only seed nets:

- ``mm1k`` — the M/M/1/K queue as a two-place net (the same net the CTMC
  export is validated against in the test suite), scaled up so sweeps have
  a non-trivial state space;
- ``cpu-gspn`` — the paper's Figure 3 CPU net with its two deterministic
  transitions (PDT, PUT) replaced by exponentials of the same mean.  This
  is the "naive Markov" baseline (Erlang-1 phase-type) of the paper's
  Section 4.1 discussion: solvable exactly as a GSPN, so rate sweeps over
  arrival/service/threshold rates run through the batched analytical path;
- ``wsn-cluster`` — a multi-node composition: ``n_nodes`` sensor nodes,
  each with its own bounded sample buffer, contending for one shared
  radio channel.  Its state space is a *product* space
  (``(K+1)^n * (n+1)`` markings), so modest knobs produce chains deep in
  iterative-solver territory — the demo scenario for the GMRES/power
  steady-state methods (``repro-experiments steady --net wsn-cluster
  --solver gmres``).

Plus one *deliberately broken* net:

- ``deadlock`` — two processes acquiring two shared locks in opposite
  order, the classic hold-and-wait deadlock.  It exists to demonstrate
  the verification subsystem: ``repro-experiments lint --net deadlock``
  flags the unmarked siphon (``PN004``) structurally, and any steady-state
  sweep over it is aborted by the preflight (``CH001``: the dead marking
  where each process holds one lock) before a single point is solved.

Each registry entry carries default sweep metrics so the CLI can run a
meaningful sweep with nothing but ``--net`` and ``--rate``.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.core.params import CPUModelParams
from repro.core.petri_cpu import build_cpu_net
from repro.des.distributions import Exponential
from repro.petri.net import PetriNet
from repro.petri.transitions import TimedTransition

__all__ = [
    "build_mm1k_net",
    "build_cpu_gspn_net",
    "build_deadlock_net",
    "build_wsn_cluster_net",
    "DEMO_NETS",
]


def build_mm1k_net(lam: float = 1.0, mu: float = 2.0, K: int = 40) -> PetriNet:
    """M/M/1/K as a GSPN: ``free`` seats and a ``queue`` place."""
    net = PetriNet("mm1k")
    net.add_place("free", initial=K)
    net.add_place("queue")
    net.add_timed_transition("arrive", Exponential(lam))
    net.add_input_arc("free", "arrive")
    net.add_output_arc("arrive", "queue")
    net.add_timed_transition("serve", Exponential(mu))
    net.add_input_arc("queue", "serve")
    net.add_output_arc("serve", "free")
    return net


def build_cpu_gspn_net(
    params: Optional[CPUModelParams] = None, buffer_capacity: int = 25
) -> PetriNet:
    """Figure 3 CPU net with deterministic delays made exponential.

    PDT's constant idle threshold ``T`` becomes ``Exponential(1/T)`` and
    PUT's constant wake-up delay ``D`` becomes ``Exponential(1/D)`` — the
    Erlang-1 approximation.  The result is exponential-only, hence exactly
    solvable via :class:`repro.petri.ctmc_export.GSPNSolver`, and its
    ``PDT``/``PUT`` rates are sweepable axes (sweeping ``PDT``'s rate is
    sweeping the *mean* power-down threshold ``1/rate``).  ``CPU_Buffer``
    is bounded at *buffer_capacity* so the reachability graph is finite.
    """
    if params is None:
        params = CPUModelParams.paper_defaults(T=0.3, D=0.001)
    net = build_cpu_net(params, buffer_capacity=buffer_capacity)
    # swap the two deterministic timers before the net is ever compiled
    for name, mean in (
        ("PDT", max(params.power_down_threshold, 1e-9)),
        ("PUT", max(params.power_up_delay, 1e-9)),
    ):
        trans = net.transition(name)
        assert isinstance(trans, TimedTransition)
        trans.distribution = Exponential(1.0 / mean)
    return net


def build_wsn_cluster_net(
    n_nodes: int = 3,
    buffer_capacity: int = 12,
    arrival_rate: float = 0.8,
    send_rate: float = 2.0,
    release_rate: float = 8.0,
) -> PetriNet:
    """``n_nodes`` sensor nodes sharing one radio channel.

    Each node ``i`` samples readings into a bounded buffer ``buf<i>``
    (exponential arrivals ``arr<i>``; arrivals block while the buffer is
    full) and drains it over the radio: ``snd<i>`` grabs the single
    ``ch`` (channel) token and moves one reading into transmission
    (``tx<i>``), ``rel<i>`` completes the transmission and releases the
    channel.  Channel contention couples the nodes, so the chain does not
    factor into independent queues.

    The tangible state space is the product of the per-node buffer levels
    times the channel owner — ``(buffer_capacity + 1)**n_nodes *
    (n_nodes + 1)`` markings — which makes this the scaling scenario for
    the iterative steady-state solvers: the defaults give ~8.8k states,
    ``n_nodes=3, buffer_capacity=30`` already ~119k (past any comfortable
    direct-LU size), every one of them an exponential-only GSPN solvable
    through :class:`~repro.petri.ctmc_export.GSPNSolver`.

    Sweepable axes are the per-node rates (``arr0``, ``snd0``, ``rel0``,
    ...).
    """
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
    if buffer_capacity < 1:
        raise ValueError(
            f"buffer_capacity must be >= 1, got {buffer_capacity}"
        )
    net = PetriNet("wsn_cluster")
    net.add_place("ch", initial=1)
    for i in range(n_nodes):
        net.add_place(f"buf{i}", capacity=buffer_capacity)
        net.add_place(f"tx{i}")
        net.add_timed_transition(f"arr{i}", Exponential(arrival_rate))
        net.add_output_arc(f"arr{i}", f"buf{i}")
        net.add_timed_transition(f"snd{i}", Exponential(send_rate))
        net.add_input_arc(f"buf{i}", f"snd{i}")
        net.add_input_arc("ch", f"snd{i}")
        net.add_output_arc(f"snd{i}", f"tx{i}")
        net.add_timed_transition(f"rel{i}", Exponential(release_rate))
        net.add_input_arc(f"tx{i}", f"rel{i}")
        net.add_output_arc(f"rel{i}", "ch")
    return net


def build_deadlock_net(
    acquire_rate: float = 1.0, release_rate: float = 2.0
) -> PetriNet:
    """Two processes, two locks, opposite acquisition order — deadlockable.

    Process ``p`` takes ``lockA`` then ``lockB``; process ``q`` takes
    ``lockB`` then ``lockA``; both release everything when done.  The
    marking where each holds its first lock is dead: each waits forever
    for the lock the other holds.  This net is *intentionally* broken —
    it is the demo subject for ``repro-experiments lint`` (the siphon
    ``{lockA, lockB, p_working, q_working}`` has no marked trap → PN004)
    and for the sweep preflight, which names the dead marking (CH001)
    and aborts before any grid point is solved.
    """
    net = PetriNet("deadlock")
    net.add_place("lockA", initial=1)
    net.add_place("lockB", initial=1)
    for proc, first, second in (
        ("p", "lockA", "lockB"),
        ("q", "lockB", "lockA"),
    ):
        net.add_place(f"{proc}_idle", initial=1)
        net.add_place(f"{proc}_has_first")
        net.add_place(f"{proc}_working")
        net.add_timed_transition(f"{proc}_get1", Exponential(acquire_rate))
        net.add_input_arc(f"{proc}_idle", f"{proc}_get1")
        net.add_input_arc(first, f"{proc}_get1")
        net.add_output_arc(f"{proc}_get1", f"{proc}_has_first")
        net.add_timed_transition(f"{proc}_get2", Exponential(acquire_rate))
        net.add_input_arc(f"{proc}_has_first", f"{proc}_get2")
        net.add_input_arc(second, f"{proc}_get2")
        net.add_output_arc(f"{proc}_get2", f"{proc}_working")
        net.add_timed_transition(f"{proc}_done", Exponential(release_rate))
        net.add_input_arc(f"{proc}_working", f"{proc}_done")
        net.add_output_arc(f"{proc}_done", first)
        net.add_output_arc(f"{proc}_done", second)
        net.add_output_arc(f"{proc}_done", f"{proc}_idle")
    return net


#: name -> (net factory, default sweep metrics)
DEMO_NETS: Dict[str, Tuple[Callable[[], PetriNet], Tuple[str, ...]]] = {
    "mm1k": (
        build_mm1k_net,
        ("mean_tokens:queue", "probability_positive:queue", "throughput:serve"),
    ),
    "cpu-gspn": (
        build_cpu_gspn_net,
        ("mean_tokens:Active", "mean_tokens:Stand_By", "throughput:SR"),
    ),
    "wsn-cluster": (
        build_wsn_cluster_net,
        ("mean_tokens:buf0", "probability_positive:ch", "throughput:rel0"),
    ),
    "deadlock": (
        build_deadlock_net,
        ("mean_tokens:p_working", "probability_positive:lockA", "throughput:p_done"),
    ),
}
