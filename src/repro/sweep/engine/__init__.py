"""The unified sweep execution engine.

Every way this repo runs a sweep — the serial loop, the in-machine
process pool, the distributed coordinator/worker fan-out, and the
always-on service — used to re-implement the same five concerns:
scheduling, warm-start reset, per-point failure isolation, telemetry
shipping, and checkpoint journaling.  This package is the one place
those concerns live now; the execution paths are thin adapters over it.

The pieces
----------

- :mod:`~repro.sweep.engine.points` — the per-point/per-batch solve
  loop (:func:`iter_partition_rows`, :func:`solve_point_row`,
  :func:`rows_from_solutions`) with the canonical failure taxonomy
  (:data:`SOLVE_FAILURE_TYPES` / :data:`METRIC_FAILURE_TYPES` /
  :data:`CONFIG_ERROR_TYPES`).
- :mod:`~repro.sweep.engine.plan` — :class:`ExecutionPlan` /
  :class:`Partition`: a sweep turned into explicit contiguous point
  partitions (sized against the backend's ``resolve_batch_size``) plus
  retry/poison budgets, consumed by every executor.
- :mod:`~repro.sweep.engine.executor` — the :class:`Executor` protocol
  with the in-process adapters (:class:`SerialExecutor`,
  :class:`PoolExecutor`); the distributed coordinator and the service
  pool are the out-of-process adapters built from the same parts.
- :mod:`~repro.sweep.engine.collector` — :class:`RowCollector`:
  first-write-wins row merging, exactly-once telemetry (counters merge
  unconditionally as drained deltas; spans merge only with their stored
  row), and checkpoint journaling.
- :mod:`~repro.sweep.engine.wire` — the worker-side streaming loop
  (:func:`stream_partition`): solves one partition and ships results as
  per-point ``row`` messages or batched ``rows`` frames (protocol v2),
  shared by the one-shot distributed worker and the persistent service
  worker.
"""

from repro.sweep.engine.collector import RowCollector
from repro.sweep.engine.executor import Executor, PoolExecutor, SerialExecutor
from repro.sweep.engine.plan import (
    ExecutionPlan,
    Partition,
    build_plan,
    contiguous_chunks,
    partition_indices,
    plan_fingerprint,
)
from repro.sweep.engine.points import (
    CONFIG_ERROR_TYPES,
    METRIC_FAILURE_TYPES,
    SOLVE_FAILURE_TYPES,
    iter_partition_rows,
    rows_from_solutions,
    solve_missing_rows,
    solve_point_row,
)
from repro.sweep.engine.wire import WorkerConfigError, stream_partition

__all__ = [
    "CONFIG_ERROR_TYPES",
    "METRIC_FAILURE_TYPES",
    "SOLVE_FAILURE_TYPES",
    "ExecutionPlan",
    "Executor",
    "Partition",
    "PoolExecutor",
    "RowCollector",
    "SerialExecutor",
    "WorkerConfigError",
    "build_plan",
    "contiguous_chunks",
    "iter_partition_rows",
    "partition_indices",
    "plan_fingerprint",
    "rows_from_solutions",
    "solve_missing_rows",
    "solve_point_row",
    "stream_partition",
]
