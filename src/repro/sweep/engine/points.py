"""The canonical per-point / per-batch solve loop.

Every execution path — serial, pool worker, distributed worker, service
worker, and the service micro-batcher — turns grid points into metric
rows through the functions here, so the failure taxonomy, the span
conventions (``sweep.batch`` → ``sweep.point`` → ``sweep.solve`` /
``sweep.metrics``), and warm-start hygiene are defined exactly once.

Failure taxonomy
----------------

- :data:`SOLVE_FAILURE_TYPES` / :data:`METRIC_FAILURE_TYPES` — *point
  local*: the point gets an all-NaN row plus a
  :class:`~repro.sweep.results.PointFailure`; the sweep continues.
- :data:`CONFIG_ERROR_TYPES` — *configuration bugs* (unknown axis,
  malformed metric spec, unknown place): they would fail on every point,
  so they propagate and abort the run.  The wire layer maps them to a
  ``fatal`` message carrying the offending index.
"""

from __future__ import annotations

import math
from typing import (
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro import obs
from repro.markov.ctmc import NumericalSolveError
from repro.sweep.backends.base import Metric, SweepBackend, metric_name
from repro.sweep.results import PointFailure

__all__ = [
    "CONFIG_ERROR_TYPES",
    "METRIC_FAILURE_TYPES",
    "SOLVE_FAILURE_TYPES",
    "iter_partition_rows",
    "metrics_row",
    "rows_from_solutions",
    "solve_missing_rows",
    "solve_point_row",
]

#: Exception types treated as a *per-point solve failure* (NaN row + error
#: record).  ``ValueError`` covers singular/reducible chains surfacing
#: from the direct solvers (including ``numpy.linalg.LinAlgError``, a
#: ``ValueError`` subclass) and ``RuntimeError`` covers
#: ``ConvergenceError``; anything else (``KeyError`` for bad axes,
#: ``TypeError``…) is a configuration bug and propagates.
SOLVE_FAILURE_TYPES = (
    ValueError,
    ArithmeticError,
    RuntimeError,
)

#: Exception types treated as a per-point failure during *metric
#: evaluation* (GSPN backends solve their steady state lazily, at the
#: first steady metric).  Deliberately excludes plain ``ValueError``: a
#: malformed metric spec is a configuration error that would fail on
#: every point and must raise, whereas a lazily-triggered solve stall
#: (:class:`~repro.markov.ctmc.ConvergenceError` is a ``RuntimeError``),
#: a singular chain (:class:`~repro.markov.ctmc.NumericalSolveError`),
#: or a dense-factorisation failure (``numpy.linalg.LinAlgError``) is
#: point-local — the latter two are the only ``ValueError`` subclasses
#: caught here.
METRIC_FAILURE_TYPES = (
    ArithmeticError,
    RuntimeError,
    np.linalg.LinAlgError,
    NumericalSolveError,
)

#: Exception types that mark a *configuration bug* when raised out of a
#: point solve or metric evaluation: unknown axes (``KeyError``),
#: malformed metric specs (``ValueError`` from the spec parser, raised
#: before any solve), wrong payload shapes (``TypeError``).  Every
#: remote execution path catches these to abort the whole run with a
#: diagnosis instead of poisoning points one by one.
CONFIG_ERROR_TYPES = (
    KeyError,
    ValueError,
    TypeError,
)


def solve_point_row(
    model: SweepBackend,
    metrics: Sequence[Metric],
    point: Mapping[str, float],
    index: int,
) -> Tuple[List[float], Optional[PointFailure]]:
    """Solve one grid point into a metric row, isolating numerical failures.

    The shared per-point plumbing of every execution path (serial, process
    pool, distributed workers).  Returns ``(row, failure)``: on success the
    metric values and ``None``; on a recoverable numerical failure (see
    :data:`SOLVE_FAILURE_TYPES` / :data:`METRIC_FAILURE_TYPES`) an all-NaN
    row plus the :class:`~repro.sweep.results.PointFailure` record.
    Configuration errors propagate.
    """
    nan_row = lambda: [math.nan] * len(metrics)  # noqa: E731
    with obs.span("sweep.point", index=index) as sp:
        with obs.span("sweep.solve"):
            try:
                solution = model.solve(point)
            except SOLVE_FAILURE_TYPES as exc:
                sp.set("stage", "solve")
                sp.set("error", type(exc).__name__)
                return nan_row(), PointFailure(
                    index=index,
                    point={k: float(v) for k, v in point.items()},
                    stage="solve",
                    error_type=type(exc).__name__,
                    message=str(exc),
                )
        return metrics_row(model, metrics, point, index, solution, sp)


def metrics_row(
    model: SweepBackend,
    metrics: Sequence[Metric],
    point: Mapping[str, float],
    index: int,
    solution,
    sp,
) -> Tuple[List[float], Optional[PointFailure]]:
    """Evaluate *metrics* on an already-solved point (shared by the
    pointwise and batched paths; *sp* is the open ``sweep.point`` span)."""
    nan_row = lambda: [math.nan] * len(metrics)  # noqa: E731
    row: List[float] = []
    with obs.span("sweep.metrics"):
        for i, m in enumerate(metrics):
            try:
                row.append(model.evaluate(solution, m))
            except METRIC_FAILURE_TYPES as exc:
                sp.set("stage", "metric")
                sp.set("error", type(exc).__name__)
                return nan_row(), PointFailure(
                    index=index,
                    point={k: float(v) for k, v in point.items()},
                    stage="metric",
                    error_type=type(exc).__name__,
                    message=str(exc),
                    metric=metric_name(m, i),
                )
    return row, None


def rows_from_solutions(
    model: SweepBackend,
    metrics: Sequence[Metric],
    points: Sequence[Mapping[str, float]],
    solutions: Sequence[object],
    indices: Optional[Sequence[int]] = None,
    start: int = 0,
):
    """Turn a batch of already-solved points into ``(index, row, failure)``.

    The downstream half of every batched path (serial batched, batched
    wire framing, service micro-batching): per point one ``sweep.point``
    span, an ``Exception`` entry in *solutions* (the batch layer's
    per-point failure isolation) becomes an all-NaN row plus a
    ``stage="solve"`` :class:`~repro.sweep.results.PointFailure`, and
    metric evaluation failures are isolated exactly like the pointwise
    path.  *indices* gives the grid index per point; when omitted they
    are ``start + offset``.  Configuration errors propagate — callers
    that need the offending index know the next unyielded position.
    """
    nan_row = lambda: [math.nan] * len(metrics)  # noqa: E731
    for offset, (point, solution) in enumerate(zip(points, solutions)):
        index = indices[offset] if indices is not None else start + offset
        with obs.span("sweep.point", index=index) as sp:
            if isinstance(solution, Exception):
                sp.set("stage", "solve")
                sp.set("error", type(solution).__name__)
                yield index, nan_row(), PointFailure(
                    index=index,
                    point={k: float(v) for k, v in point.items()},
                    stage="solve",
                    error_type=type(solution).__name__,
                    message=str(solution),
                )
                continue
            row, failure = metrics_row(
                model, metrics, point, index, solution, sp
            )
        yield index, row, failure


def iter_partition_rows(
    model: SweepBackend,
    metrics: Sequence[Metric],
    points: Sequence[Mapping[str, float]],
    start: int = 0,
    *,
    indices: Optional[Sequence[int]] = None,
    pointwise: bool = False,
):
    """Yield ``(index, row, failure)`` for *points*, batching when the
    backend can.

    The shared inner loop of the serial runner, the pool workers, and
    (through :mod:`~repro.sweep.engine.wire`) the distributed and
    service workers.  A batch-capable backend (``batch_capable`` — see
    :meth:`~repro.sweep.backends.base.SweepBackend.solve_batch`) gets the
    points in stacked batches of its preferred size, solved as one
    block-diagonal system each under a ``sweep.batch`` span; everything
    downstream is unchanged — one ``sweep.point`` span, one row, and
    per-point failure isolation per grid point, exactly as on the
    pointwise path.  Indices are offset by *start* (a partition's base)
    or given explicitly via *indices*; ``pointwise=True`` forces the
    per-point path even on a batch-capable backend (the coordinator's
    retry downgrade).
    """
    batch = (
        model.resolve_batch_size(len(points))
        if not pointwise and getattr(model, "batch_capable", False)
        else 1
    )
    if batch <= 1:
        for offset, point in enumerate(points):
            index = indices[offset] if indices is not None else start + offset
            row, failure = solve_point_row(model, metrics, point, index)
            yield index, row, failure
        return
    for base in range(0, len(points), batch):
        span = points[base : base + batch]
        sub_indices = (
            list(indices[base : base + batch])
            if indices is not None
            else list(range(start + base, start + base + len(span)))
        )
        with obs.span(
            "sweep.batch", start=sub_indices[0], points=len(span)
        ):
            solutions = model.solve_batch(list(span))
        yield from rows_from_solutions(
            model, metrics, span, solutions, indices=sub_indices
        )


def solve_missing_rows(
    model: SweepBackend,
    metrics: Sequence[Metric],
    points: Sequence[Mapping[str, float]],
    missing: Iterable[int],
):
    """Serially solve *missing* indices, yielding ``(index, row, failure)``.

    The shared resume loop of the broken-pool fallback and the
    distributed runner's serial paths.  *missing* must be ascending; the
    warm start is reset whenever consecutive indices are not adjacent —
    completed work interleaves the gaps, and a warm start must never
    cross one.
    """
    previous: Optional[int] = None
    for index in missing:
        if previous is not None and index != previous + 1:
            model.reset_point_state()
        previous = index
        row, failure = solve_point_row(model, metrics, points[index], index)
        obs.incr("sweep.rows.completed")
        if failure is not None:
            obs.incr("sweep.rows.failed")
        yield (index, row, failure)
