"""Exactly-once row + telemetry collection.

:class:`RowCollector` is the receiving half of every remote execution
path: the distributed coordinator and the service worker pool both feed
it the messages a worker streams back, and it enforces the merge
discipline the telemetry layer depends on:

- **rows are first-write-wins** — a requeue race can deliver one index
  twice; the duplicate is dropped (and its spans with it);
- **counter deltas merge unconditionally** — they measure solver work
  actually done, duplicated or not (workers ``drain_counters()``, so
  deltas are never double-counted at the source);
- **spans merge only with their stored row** — a span segment arriving
  ahead of its row (the ``telemetry``-before-``row`` convention) or
  inside a batched ``rows`` frame is stashed per index and merged
  exactly when that row is first stored, keeping the merged trace
  covering every grid point exactly once;
- **completed rows journal to the checkpoint** at the same moment they
  count as completed, so a resume never re-solves a merged row.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.sweep.results import PointFailure

__all__ = ["RowCollector"]


class RowCollector:
    """Merge worker-streamed rows, spans, and counters exactly once.

    Parameters
    ----------
    n_metrics:
        Row width (used only for sanity — rows are stored as sent).
    trace:
        The run-level trace to merge telemetry into (``None`` disables
        all telemetry handling; rows still merge).
    checkpoint:
        Optional open checkpoint; every first-stored row is journalled.
    counter_completed, counter_failed:
        Progress counter names bumped per first-stored row (``None``
        skips that counter — the service pool counts completions under
        its own name and leaves failures to the request layer).
    """

    def __init__(
        self,
        n_metrics: int,
        *,
        trace=None,
        checkpoint=None,
        counter_completed: Optional[str] = "sweep.rows.completed",
        counter_failed: Optional[str] = "sweep.rows.failed",
    ) -> None:
        self.n_metrics = n_metrics
        self.rows: Dict[int, List[float]] = {}
        self.errors: Dict[int, PointFailure] = {}
        self._trace = trace
        self._checkpoint = checkpoint
        self._counter_completed = counter_completed
        self._counter_failed = counter_failed
        self._stashed_spans: Dict[int, List[Dict[str, object]]] = {}

    def preload(
        self,
        rows: Mapping[int, Sequence[float]],
        errors: Mapping[int, PointFailure],
        *,
        count: bool = True,
    ) -> None:
        """Seed already-completed rows (checkpoint resume).

        With ``count=True`` the resumed rows bump the progress counters,
        so a resumed sweep's counters start from the resumed offset.
        """
        for index, values in rows.items():
            self.rows[index] = [float(v) for v in values]
        self.errors.update(errors)
        if count and self._trace is not None and rows:
            if self._counter_completed:
                self._trace.incr(self._counter_completed, len(rows))
            resumed_failed = sum(1 for i in errors if i in rows)
            if resumed_failed and self._counter_failed:
                self._trace.incr(self._counter_failed, resumed_failed)

    def store(
        self,
        index: int,
        values: Sequence[float],
        error: Optional[PointFailure] = None,
    ) -> bool:
        """Record one completed row; ``False`` on duplicate delivery
        (requeue race — first write wins, telemetry must not merge)."""
        if index in self.rows:
            self._stashed_spans.pop(index, None)
            return False
        self.rows[index] = [float(v) for v in values]
        if error is not None:
            self.errors[index] = error
        if self._trace is not None:
            if self._counter_completed:
                self._trace.incr(self._counter_completed)
            if error is not None and self._counter_failed:
                self._trace.incr(self._counter_failed)
        if self._checkpoint is not None:
            self._checkpoint.append_row(index, values, error)
        spans = self._stashed_spans.pop(index, None)
        if spans and self._trace is not None:
            self._trace.merge_segment(spans=spans)
        return True

    def stash_spans(
        self, index: int, spans: Sequence[Mapping[str, object]]
    ) -> None:
        """Hold a point's span segment until its row is stored."""
        if self._trace is not None and spans:
            self._stashed_spans[index] = list(spans)

    def merge_counters(self, counters: Optional[Mapping[str, float]]) -> None:
        """Merge drained counter deltas (unconditional — see module doc)."""
        if self._trace is not None and counters:
            self._trace.merge_segment(counters=counters)

    def apply_telemetry(self, message: Mapping[str, object]) -> None:
        """Apply one ``telemetry`` protocol message (counters + stash)."""
        self.merge_counters(message.get("counters"))  # type: ignore[arg-type]
        spans = message.get("spans")
        index = message.get("index")
        if spans and index is not None:
            self.stash_spans(index, spans)  # type: ignore[arg-type]

    def apply_rows_frame(self, message: Mapping[str, object]) -> List[Dict]:
        """Unpack a batched ``rows`` frame into its per-row payloads.

        Merges the frame's counters once and stashes its per-point span
        segments; returns the row payloads (``{"index", "values",
        "error"}`` dicts) for the caller to store — storing stays with
        the caller because the coordinator serialises it under its
        condition variable.
        """
        self.merge_counters(message.get("counters"))  # type: ignore[arg-type]
        spans = message.get("spans") or {}
        for index, segment in spans.items():  # type: ignore[union-attr]
            self.stash_spans(index, segment)
        return list(message.get("rows") or [])  # type: ignore[arg-type]

    @property
    def n_completed(self) -> int:
        return len(self.rows)
