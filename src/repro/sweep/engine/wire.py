"""The worker-side streaming loop shared by every wire-connected worker.

:func:`stream_partition` is what both the one-shot distributed worker
and the persistent service worker run per chunk/task: reset the warm
start at the partition boundary, solve the points, and stream results
back with exactly-once telemetry framing.  Two framings exist:

- **pointwise** (``pointwise=True``, or a backend that is not
  batch-capable): the historical loop — per point one ``telemetry``
  message (spans since the last cursor + drained counter deltas)
  *ahead of* one ``row`` message, so the receiver merges each stored
  row's spans exactly once and a mid-partition death loses at most the
  point in flight.
- **batched** (protocol v2): a batch-capable backend solves the
  partition in stacked batches (``solve_batch`` under a ``sweep.batch``
  span) and ships one ``rows`` frame per batch — all the batch's rows,
  its per-point span segments keyed by index, and one counters delta.
  Sub-millisecond points stop being framing-bound: one frame amortises
  over the whole batch instead of two messages per row.

Configuration errors (:data:`~repro.sweep.engine.points.CONFIG_ERROR_TYPES`)
raise :class:`WorkerConfigError` carrying the offending index; the
one-shot worker turns it into a ``fatal`` message and exits, the service
worker reports it and stays alive for the next task.
"""

from __future__ import annotations

import logging
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro import obs
from repro.sweep.backends.base import Metric, SweepBackend
from repro.sweep.engine.points import (
    CONFIG_ERROR_TYPES,
    rows_from_solutions,
    solve_point_row,
)

__all__ = ["WorkerConfigError", "stream_partition"]

logger = logging.getLogger(__name__)


class WorkerConfigError(Exception):
    """A configuration error hit while streaming — carries the index.

    Wraps one of :data:`~repro.sweep.engine.points.CONFIG_ERROR_TYPES`
    (bad metric spec, unknown place/axis): it would fail on every point
    and every worker, so the caller reports a ``fatal`` diagnosis
    instead of letting the whole fleet die one connection at a time.
    """

    def __init__(self, index: int, error: BaseException) -> None:
        super().__init__(str(error))
        self.index = index
        self.error = error


async def stream_partition(
    writer,
    model: SweepBackend,
    metrics: Sequence[Metric],
    indices: Sequence[int],
    points: Sequence[Mapping[str, float]],
    *,
    pointwise: bool = False,
    trace: Optional["obs.Trace"] = None,
    ship_telemetry: bool = False,
    cursor: int = 0,
    rows_sent: int = 0,
    should_die: Optional[Callable[[int, int], bool]] = None,
    fault_label: str = "worker",
) -> Tuple[int, int, bool]:
    """Solve one partition and stream its rows; returns
    ``(rows_sent, cursor, died)``.

    The warm start is reset at entry (the previous partition may be a
    far-away span of the grid — never warm-start across it) and carried
    point-to-point within the partition.  *rows_sent* / *cursor* thread
    the connection-lifetime totals through successive calls.

    *should_die* is the fault-injection hook (``(index, rows_sent) ->
    bool``): when it fires the connection is aborted (RST, no goodbye —
    indistinguishable from a crash on the receiving side) and ``died``
    is ``True``; the caller stops serving.

    Worker-local failures (``MemoryError``, ``OSError``…) deliberately
    propagate: this worker dies and the partition is requeued to
    roomier survivors.
    """
    from repro.sweep.distributed.protocol import send_message

    model.reset_point_state()
    batch = (
        max(1, model.resolve_batch_size(len(points)))
        if getattr(model, "batch_capable", False)
        else 1
    )
    if pointwise or batch <= 1:
        # the pointwise-framing downgrade keeps the stacked solve kernel
        # (one-point batches) when the backend would have batched: the
        # downgrade changes the wire granularity for blame isolation,
        # never the numerics — a requeued point stays bit-identical to
        # the batched frame it replaces
        batch_kernel = batch > 1
        for index, point in zip(indices, points):
            if should_die is not None and should_die(index, rows_sent):
                logger.warning(
                    "%s: injected fault before point %d", fault_label, index
                )
                writer.transport.abort()
                return rows_sent, cursor, True
            try:
                if batch_kernel:
                    ((_, row, failure),) = list(
                        rows_from_solutions(
                            model,
                            metrics,
                            [point],
                            model.solve_batch([point]),
                            indices=[index],
                        )
                    )
                else:
                    row, failure = solve_point_row(
                        model, metrics, point, index
                    )
            except CONFIG_ERROR_TYPES as exc:
                raise WorkerConfigError(index, exc) from exc
            if ship_telemetry and trace is not None:
                # the point's trace segment travels *ahead* of its row:
                # the receiver stashes it and merges it only if the row
                # is actually stored, so a stored row always has its
                # spans and a duplicate delivery (requeue race) never
                # double-counts them
                await send_message(
                    writer,
                    {
                        "kind": "telemetry",
                        "index": index,
                        "spans": trace.slice_spans(cursor),
                        "counters": trace.drain_counters(),
                    },
                )
                cursor = trace.mark()
            await send_message(
                writer,
                {
                    "kind": "row",
                    "index": index,
                    "values": row,
                    "error": failure,
                },
            )
            rows_sent += 1
        return rows_sent, cursor, False

    for base in range(0, len(points), batch):
        sub_indices = list(indices[base : base + batch])
        sub_points = list(points[base : base + batch])
        if should_die is not None and any(
            should_die(i, rows_sent) for i in sub_indices
        ):
            logger.warning(
                "%s: injected fault before point %d",
                fault_label,
                sub_indices[0],
            )
            writer.transport.abort()
            return rows_sent, cursor, True
        with obs.span(
            "sweep.batch", start=sub_indices[0], points=len(sub_points)
        ):
            try:
                solutions = model.solve_batch(sub_points)
            except CONFIG_ERROR_TYPES as exc:
                raise WorkerConfigError(sub_indices[0], exc) from exc
        frame_rows: List[Dict[str, object]] = []
        frame_spans: Dict[int, List[Dict[str, object]]] = {}
        produced = rows_from_solutions(
            model, metrics, sub_points, solutions, indices=sub_indices
        )
        try:
            for index, row, failure in produced:
                frame_rows.append(
                    {"index": index, "values": row, "error": failure}
                )
                if ship_telemetry and trace is not None:
                    # per-point span segments, keyed by index inside the
                    # frame — same exactly-once discipline as the
                    # telemetry-before-row convention, one frame instead
                    # of 2xN messages
                    frame_spans[index] = trace.slice_spans(cursor)
                    cursor = trace.mark()
        except CONFIG_ERROR_TYPES as exc:
            # the generator yields in order, so the next unyielded
            # position is the point whose metrics raised
            raise WorkerConfigError(
                sub_indices[len(frame_rows)], exc
            ) from exc
        frame: Dict[str, object] = {"kind": "rows", "rows": frame_rows}
        if ship_telemetry and trace is not None:
            frame["spans"] = frame_spans
            frame["counters"] = trace.drain_counters()
        await send_message(writer, frame)
        rows_sent += len(frame_rows)
    return rows_sent, cursor, False
