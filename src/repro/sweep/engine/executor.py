"""In-process executors over an :class:`~repro.sweep.engine.plan.ExecutionPlan`.

The :class:`Executor` protocol is the engine's narrow waist: it takes a
plan plus the live template and returns the full ``(rows, errors)``
table.  Two adapters live here — :class:`SerialExecutor` (the plain
loop) and :class:`PoolExecutor` (contiguous partitions over a process
pool, with the broken-pool serial fallback).  The out-of-process
adapters — the distributed coordinator and the service worker pool —
are built from the same engine parts (:mod:`~repro.sweep.engine.points`,
:mod:`~repro.sweep.engine.collector`, :mod:`~repro.sweep.engine.wire`)
but own their transports.
"""

from __future__ import annotations

import logging
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from pickle import PicklingError
from typing import (
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
)

from repro import obs
from repro.sweep.backends.base import Metric, SweepBackend
from repro.sweep.engine.plan import ExecutionPlan
from repro.sweep.engine.points import iter_partition_rows, solve_missing_rows
from repro.sweep.results import PointFailure

__all__ = ["Executor", "PoolExecutor", "SerialExecutor"]

logger = logging.getLogger(__name__)


class Executor(Protocol):
    """Anything that can run an execution plan to a complete table."""

    def run(
        self,
        plan: ExecutionPlan,
        model: SweepBackend,
        metrics: Sequence[Metric],
        points: Sequence[Mapping[str, float]],
    ) -> Tuple[List[List[float]], List[PointFailure]]:
        """Solve every planned point; return rows in grid order."""
        ...


class SerialExecutor:
    """Run the plan in this process, one partition after another.

    The warm start carries within a partition and resets at partition
    boundaries (a later partition may be a far-away span of the grid);
    the first partition starts from the template's pristine state, so a
    single-partition plan is exactly the historical serial loop.
    """

    def run(
        self,
        plan: ExecutionPlan,
        model: SweepBackend,
        metrics: Sequence[Metric],
        points: Sequence[Mapping[str, float]],
    ) -> Tuple[List[List[float]], List[PointFailure]]:
        rows: Dict[int, List[float]] = {}
        errors: List[PointFailure] = []
        for n, partition in enumerate(plan.partitions):
            if n:
                model.reset_point_state()
            for index, row, failure in iter_partition_rows(
                model,
                metrics,
                partition.points,
                indices=partition.indices,
                pointwise=partition.pointwise,
            ):
                rows[index] = row
                obs.incr("sweep.rows.completed")
                if failure is not None:
                    errors.append(failure)
                    obs.incr("sweep.rows.failed")
        return [rows[i] for i in sorted(rows)], errors


# -- process-pool plumbing: the template lands in each worker exactly once --
_WORKER_STATE: Optional[tuple] = None


def _init_worker(
    model: SweepBackend, metrics: Sequence[Metric], telemetry: bool = False
) -> None:
    global _WORKER_STATE
    _WORKER_STATE = (model, list(metrics))
    if telemetry:
        # the parent runs with tracing on: give this worker its own trace
        # so chunk results can ship span segments + counter deltas back
        obs.activate(obs.Trace("sweep-worker"))


def _solve_chunk(
    start: int, chunk_points: Sequence[Mapping[str, float]]
) -> Tuple[
    int, List[List[float]], List[PointFailure], Optional[Dict[str, object]]
]:
    """Solve one contiguous partition inside a pool worker.

    The warm start is reset at the partition boundary — the previous
    partition this worker solved may be a far-away span of the grid —
    then carried point-to-point within it.

    The fourth element is the partition's telemetry segment (spans
    recorded during it + counter deltas) when the worker traces, else
    ``None``; the parent merges it into the run-level trace.
    """
    assert _WORKER_STATE is not None, "worker used before initialisation"
    model, metrics = _WORKER_STATE
    model.reset_point_state()
    trace = obs.current_trace()
    mark = trace.mark() if trace is not None else 0
    rows: List[List[float]] = []
    errors: List[PointFailure] = []
    for _, row, failure in iter_partition_rows(
        model, metrics, chunk_points, start
    ):
        rows.append(row)
        if failure is not None:
            errors.append(failure)
    segment: Optional[Dict[str, object]] = None
    if trace is not None:
        segment = {
            "spans": trace.slice_spans(mark),
            "counters": trace.drain_counters(),
        }
    return start, rows, errors, segment


class PoolExecutor:
    """Fan the plan's partitions out over a local process pool.

    The template ships to each worker once via the pool initializer;
    idle workers pull partitions, so oversubscribed plans load-balance.
    If the pool breaks mid-run (or cannot ship the template at all),
    completed partitions are kept and the remainder resumes serially.

    ``pool_cls`` and ``log`` are injectable so the runner keeps its
    historical monkeypatch/caplog seams (``repro.sweep.runner``).
    """

    def __init__(
        self,
        n_workers: int,
        *,
        pool_cls=None,
        log: Optional[logging.Logger] = None,
    ) -> None:
        self.n_workers = n_workers
        self._pool_cls = pool_cls if pool_cls is not None else ProcessPoolExecutor
        self._log = log if log is not None else logger

    def run(
        self,
        plan: ExecutionPlan,
        model: SweepBackend,
        metrics: Sequence[Metric],
        points: Sequence[Mapping[str, float]],
    ) -> Tuple[List[List[float]], List[PointFailure]]:
        workers = min(self.n_workers, len(points))
        rows: List[Optional[List[float]]] = [None] * len(points)
        error_map: Dict[int, PointFailure] = {}
        trace = obs.current_trace()
        harvested: set = set()

        def harvest(future, result) -> None:
            if id(future) in harvested:
                return  # the broken-pool sweep below re-visits futures
            harvested.add(id(future))
            start, chunk_rows, chunk_errors, segment = result
            rows[start : start + len(chunk_rows)] = chunk_rows
            for failure in chunk_errors:
                error_map[failure.index] = failure
            if trace is not None and segment is not None:
                trace.merge_segment(**segment)
            obs.incr("sweep.rows.completed", len(chunk_rows))
            if chunk_errors:
                obs.incr("sweep.rows.failed", len(chunk_errors))

        futures = []
        try:
            with self._pool_cls(
                max_workers=workers,
                initializer=_init_worker,
                initargs=(model, list(metrics), obs.enabled()),
            ) as pool:
                futures = [
                    pool.submit(
                        _solve_chunk,
                        partition.indices[0],
                        list(partition.points),
                    )
                    for partition in plan.partitions
                ]
                for future in futures:
                    harvest(future, future.result())
        except (BrokenProcessPool, PicklingError, OSError) as exc:
            # the pool broke or could not ship the template.  Keep every
            # partition that did complete and resume serially from the
            # unfinished points only — on a mostly-done grid the fallback
            # costs the remainder, not a full re-solve.  Genuine
            # configuration errors propagate with their own traceback.
            for future in futures:
                if (
                    future.done()
                    and not future.cancelled()
                    and future.exception() is None
                ):
                    harvest(future, future.result())
            missing = [i for i, row in enumerate(rows) if row is None]
            self._log.warning(
                "sweep process pool failed (%s); resuming %d of %d points "
                "serially",
                exc,
                len(missing),
                len(points),
            )
            for index, row, failure in solve_missing_rows(
                model, metrics, points, missing
            ):
                rows[index] = row
                if failure is not None:
                    error_map[failure.index] = failure
        assert all(row is not None for row in rows)
        return (
            [list(row) for row in rows],  # type: ignore[union-attr]
            [error_map[i] for i in sorted(error_map)],
        )
