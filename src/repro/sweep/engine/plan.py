"""Execution plans: a sweep as explicit point partitions plus budgets.

:func:`build_plan` turns "solve these grid points on this backend" into
an :class:`ExecutionPlan`: contiguous :class:`Partition`\\ s of the
remaining points (sized against the backend's preferred batch size when
it is batch-capable, so one partition is a whole number of stacked
solves), plus the retry/poison budget.  Every executor consumes the same
plan — the serial loop takes it as one partition, the pool and the
distributed coordinator pull partitions off a queue, and the service
builds one per request.

Partitioning preserves the grid's axis order: points are split into
*contiguous* spans (:func:`contiguous_chunks`), so iterative warm starts
inside a partition stay adjacent on the parameter grid and merged tables
are ordered exactly like the serial runner's.  After a checkpoint resume
the remaining indices may have gaps; each maximal contiguous run is
partitioned separately so no partition ever spans a gap (a warm start
must never cross one).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.sweep.backends.base import Metric, SweepBackend, metric_name

__all__ = [
    "ExecutionPlan",
    "Partition",
    "build_plan",
    "contiguous_chunks",
    "partition_indices",
]

#: Partitions handed out per worker: oversubscription for load balance
#: while each partition stays one contiguous span of the axis-ordered
#: grid (shared by the process pool and the distributed coordinator).
PARTITIONS_PER_WORKER = 4

#: How often one point may be requeued after killing its worker before it
#: is poisoned (NaN row + error record) instead of retried.
DEFAULT_MAX_REQUEUES = 2


def contiguous_chunks(n: int, n_chunks: int) -> List[Tuple[int, int]]:
    """Split ``range(n)`` into at most *n_chunks* contiguous spans.

    Returns ``(start, stop)`` pairs that cover ``range(n)`` in order,
    pairwise disjoint, with sizes differing by at most one.  Contiguity is
    the point: sweep grids enumerate row-major (last axis fastest), so a
    contiguous span of indices is a neighbourhood of the parameter grid
    and iterative warm starts stay adjacent within a chunk.

    >>> contiguous_chunks(10, 3)
    [(0, 4), (4, 7), (7, 10)]
    >>> contiguous_chunks(2, 8)
    [(0, 1), (1, 2)]
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if n == 0:
        return []
    n_chunks = max(1, min(n, n_chunks))
    base, extra = divmod(n, n_chunks)
    spans: List[Tuple[int, int]] = []
    start = 0
    for k in range(n_chunks):
        size = base + (1 if k < extra else 0)
        spans.append((start, start + size))
        start += size
    return spans


def partition_indices(
    remaining: Sequence[int], n_partitions: int, *, align: int = 1
) -> List[List[int]]:
    """Split the remaining grid indices into contiguous partitions.

    Each maximal contiguous run of *remaining* is partitioned separately
    (its share of *n_partitions* proportional to its length), so no
    partition spans a resume gap.  With ``align > 1`` the internal
    boundaries inside a run are rounded down to multiples of *align* —
    a batch-capable backend then solves whole stacked batches per
    partition instead of paying a ragged tail in every one.

    >>> partition_indices([0, 1, 2, 3, 4, 6, 7], 3)
    [[0, 1, 2], [3, 4], [6, 7]]
    >>> partition_indices(list(range(10)), 3, align=4)
    [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]
    """
    if not remaining:
        return []
    runs: List[List[int]] = [[remaining[0]]]
    for index in remaining[1:]:
        if index == runs[-1][-1] + 1:
            runs[-1].append(index)
        else:
            runs.append([index])
    partitions: List[List[int]] = []
    total = len(remaining)
    for run in runs:
        share = max(1, round(n_partitions * len(run) / total))
        spans = contiguous_chunks(len(run), share)
        if align > 1 and len(spans) > 1:
            spans = _align_spans(spans, len(run), align)
        for start, stop in spans:
            partitions.append(run[start:stop])
    return partitions


def _align_spans(
    spans: List[Tuple[int, int]], n: int, align: int
) -> List[Tuple[int, int]]:
    """Round internal span boundaries to the nearest multiple of *align*."""
    cuts = sorted({round(stop / align) * align for _, stop in spans[:-1]})
    bounds = [c for c in cuts if 0 < c < n] + [n]
    aligned: List[Tuple[int, int]] = []
    start = 0
    for stop in bounds:
        if stop > start:
            aligned.append((start, stop))
            start = stop
    return aligned


@dataclass
class Partition:
    """One contiguous span of pending grid points.

    ``pointwise`` marks a partition that must stream per point even on a
    batch-capable backend: the coordinator downgrades a batch-framed
    partition to pointwise when its worker dies, so the retry isolates
    the killer point instead of re-blaming the whole batch.
    """

    partition_id: int
    indices: List[int]
    points: List[Dict[str, float]]
    pointwise: bool = False


@dataclass
class ExecutionPlan:
    """A sweep made explicit: what to solve, in what groups, with what
    budgets.

    Built once by :func:`build_plan` and consumed by whichever executor
    runs the sweep; the plan itself never touches a solver.
    """

    fingerprint: str
    metric_names: List[str]
    n_points: int
    batch_size: int
    max_requeues: int
    partitions: List[Partition] = field(default_factory=list)

    @property
    def n_pending(self) -> int:
        return sum(len(p.indices) for p in self.partitions)


def plan_fingerprint(
    model: SweepBackend,
    metric_names: Sequence[str],
    points: Sequence[Mapping[str, float]],
) -> str:
    """A cheap, stable identity for "this template over this grid"."""
    h = hashlib.sha256()
    h.update(type(model).__name__.encode())
    h.update(getattr(model, "name", "").encode())
    h.update(repr(list(metric_names)).encode())
    h.update(str(len(points)).encode())
    if points:
        h.update(repr(sorted(points[0])).encode())
    return h.hexdigest()[:16]


def build_plan(
    model: SweepBackend,
    metrics: Sequence[Metric],
    points: Sequence[Mapping[str, float]],
    *,
    n_partitions: int = 1,
    done: Optional[Sequence[int]] = None,
    max_requeues: int = DEFAULT_MAX_REQUEUES,
) -> ExecutionPlan:
    """Plan a sweep: partition the pending points, record the budgets.

    ``n_partitions`` is a target, not a promise — resume gaps and batch
    alignment adjust the actual count.  When the backend is
    batch-capable its ``resolve_batch_size`` sizes the alignment so each
    partition is a whole number of stacked solves (plus one tail).
    """
    done_set = set(done or ())
    remaining = [i for i in range(len(points)) if i not in done_set]
    batch_size = (
        max(1, model.resolve_batch_size(len(points)))
        if getattr(model, "batch_capable", False)
        else 1
    )
    metric_names = [metric_name(m, i) for i, m in enumerate(metrics)]
    partitions = [
        Partition(
            partition_id=pid,
            indices=indices,
            points=[dict(points[i]) for i in indices],
        )
        for pid, indices in enumerate(
            partition_indices(remaining, n_partitions, align=batch_size)
        )
    ]
    return ExecutionPlan(
        fingerprint=plan_fingerprint(model, metric_names, points),
        metric_names=metric_names,
        n_points=len(points),
        batch_size=batch_size,
        max_requeues=max_requeues,
        partitions=partitions,
    )
