"""PNML interchange: save and load nets in the standard Petri Net Markup
Language (ISO/IEC 15909-2), with a tool-specific extension for the timing
and policy attributes PNML's core does not standardise.

Round-tripping is exact for every net this library can express: places
(initial marking, capacity), immediate transitions (priority, weight),
timed transitions (exponential / deterministic / uniform / erlang /
weibull / lognormal distributions and memory policies), and input /
output / inhibitor arcs with multiplicities.  Guards are *not*
serialisable (they are Python callables); exporting a guarded net raises.

The extension grammar lives under ``<toolspecific tool="repro">`` elements,
so other PNML consumers still read the plain structure.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path
from typing import Dict, Union

from repro.des.distributions import (
    Deterministic,
    Distribution,
    Erlang,
    Exponential,
    LogNormal,
    Uniform,
    Weibull,
)
from repro.petri.arcs import ArcKind
from repro.petri.net import NetStructureError, PetriNet
from repro.petri.transitions import (
    ImmediateTransition,
    MemoryPolicy,
    TimedTransition,
)

__all__ = ["to_pnml", "from_pnml", "save_pnml", "load_pnml"]

_NS = "http://www.pnml.org/version-2009/grammar/pnml"
_TOOL = "repro"


def _dist_to_attrs(dist: Distribution) -> Dict[str, str]:
    if isinstance(dist, Exponential):
        return {"kind": "exponential", "rate": repr(dist.rate)}
    if isinstance(dist, Deterministic):
        return {"kind": "deterministic", "value": repr(dist.value)}
    if isinstance(dist, Uniform):
        return {"kind": "uniform", "low": repr(dist.low), "high": repr(dist.high)}
    if isinstance(dist, Erlang):
        return {"kind": "erlang", "k": str(dist.k), "rate": repr(dist.rate)}
    if isinstance(dist, Weibull):
        return {"kind": "weibull", "shape": repr(dist.shape),
                "scale": repr(dist.scale)}
    if isinstance(dist, LogNormal):
        return {"kind": "lognormal", "mu": repr(dist.mu),
                "sigma": repr(dist.sigma)}
    raise NetStructureError(
        f"distribution {type(dist).__name__} has no PNML serialisation"
    )


def _dist_from_attrs(attrs: Dict[str, str]) -> Distribution:
    kind = attrs["kind"]
    if kind == "exponential":
        return Exponential(float(attrs["rate"]))
    if kind == "deterministic":
        return Deterministic(float(attrs["value"]))
    if kind == "uniform":
        return Uniform(float(attrs["low"]), float(attrs["high"]))
    if kind == "erlang":
        return Erlang(int(attrs["k"]), float(attrs["rate"]))
    if kind == "weibull":
        return Weibull(float(attrs["shape"]), float(attrs["scale"]))
    if kind == "lognormal":
        return LogNormal(float(attrs["mu"]), float(attrs["sigma"]))
    raise NetStructureError(f"unknown distribution kind {kind!r} in PNML")


def to_pnml(net: PetriNet) -> str:
    """Serialise *net* to a PNML document string."""
    root = ET.Element("pnml", xmlns=_NS)
    net_el = ET.SubElement(
        root, "net", id=net.name, type="http://www.pnml.org/version-2009/grammar/ptnet"
    )
    page = ET.SubElement(net_el, "page", id="page0")

    for place in net.places:
        p_el = ET.SubElement(page, "place", id=place.name)
        name_el = ET.SubElement(p_el, "name")
        ET.SubElement(name_el, "text").text = place.name
        if place.initial:
            mark_el = ET.SubElement(p_el, "initialMarking")
            ET.SubElement(mark_el, "text").text = str(place.initial)
        if place.capacity is not None:
            tool = ET.SubElement(p_el, "toolspecific", tool=_TOOL, version="1")
            ET.SubElement(tool, "capacity", value=str(place.capacity))

    for t in net.transitions:
        t_el = ET.SubElement(page, "transition", id=t.name)
        name_el = ET.SubElement(t_el, "name")
        ET.SubElement(name_el, "text").text = t.name
        tool = ET.SubElement(t_el, "toolspecific", tool=_TOOL, version="1")
        if t.guard is not None:
            raise NetStructureError(
                f"transition {t.name!r} has a Python guard; guards cannot "
                "be serialised to PNML"
            )
        if isinstance(t, ImmediateTransition):
            ET.SubElement(
                tool, "immediate",
                priority=str(t.priority), weight=repr(t.weight),
            )
        else:
            assert isinstance(t, TimedTransition)
            ET.SubElement(
                tool, "timed",
                policy=t.memory_policy.value, **_dist_to_attrs(t.distribution),
            )

    for i, arc in enumerate(net.arcs):
        if arc.kind is ArcKind.OUTPUT:
            source, target = arc.transition, arc.place
        else:
            source, target = arc.place, arc.transition
        a_el = ET.SubElement(
            page, "arc", id=f"arc{i}", source=source, target=target
        )
        if arc.multiplicity != 1:
            insc = ET.SubElement(a_el, "inscription")
            ET.SubElement(insc, "text").text = str(arc.multiplicity)
        if arc.kind is ArcKind.INHIBITOR:
            tool = ET.SubElement(a_el, "toolspecific", tool=_TOOL, version="1")
            ET.SubElement(tool, "inhibitor")

    ET.indent(root)
    return ET.tostring(root, encoding="unicode", xml_declaration=True)


def from_pnml(text: str) -> PetriNet:
    """Parse a PNML document produced by :func:`to_pnml`."""
    root = ET.fromstring(text)
    ns = {"p": _NS}
    net_el = root.find("p:net", ns)
    if net_el is None:
        raise NetStructureError("PNML document has no <net> element")
    net = PetriNet(net_el.get("id", "net"))
    page = net_el.find("p:page", ns)
    if page is None:
        raise NetStructureError("PNML net has no <page>")

    for p_el in page.findall("p:place", ns):
        name = p_el.get("id")
        initial = 0
        mark_el = p_el.find("p:initialMarking/p:text", ns)
        if mark_el is not None and mark_el.text:
            initial = int(mark_el.text)
        capacity = None
        cap_el = p_el.find(f"p:toolspecific[@tool='{_TOOL}']/p:capacity", ns)
        if cap_el is not None:
            capacity = int(cap_el.get("value"))
        net.add_place(name, initial=initial, capacity=capacity)

    for t_el in page.findall("p:transition", ns):
        name = t_el.get("id")
        imm = t_el.find(f"p:toolspecific[@tool='{_TOOL}']/p:immediate", ns)
        timed = t_el.find(f"p:toolspecific[@tool='{_TOOL}']/p:timed", ns)
        if imm is not None:
            net.add_immediate_transition(
                name,
                priority=int(imm.get("priority", "1")),
                weight=float(imm.get("weight", "1.0")),
            )
        elif timed is not None:
            attrs = dict(timed.attrib)
            policy = MemoryPolicy(attrs.pop("policy", "resample"))
            net.add_timed_transition(
                name, _dist_from_attrs(attrs), memory_policy=policy
            )
        else:
            raise NetStructureError(
                f"transition {name!r} lacks the repro toolspecific timing "
                "annotation (foreign PNML files need timing information)"
            )

    place_names = set(net.place_names)
    for a_el in page.findall("p:arc", ns):
        source = a_el.get("source")
        target = a_el.get("target")
        mult = 1
        insc = a_el.find("p:inscription/p:text", ns)
        if insc is not None and insc.text:
            mult = int(insc.text)
        inhibitor = (
            a_el.find(f"p:toolspecific[@tool='{_TOOL}']/p:inhibitor", ns)
            is not None
        )
        if source in place_names:
            if inhibitor:
                net.add_inhibitor_arc(source, target, multiplicity=mult)
            else:
                net.add_input_arc(source, target, multiplicity=mult)
        else:
            if inhibitor:
                raise NetStructureError(
                    f"inhibitor arc {a_el.get('id')!r} must run place->transition"
                )
            net.add_output_arc(source, target, multiplicity=mult)
    return net


def save_pnml(net: PetriNet, path: Union[str, Path]) -> Path:
    """Write *net* to a ``.pnml`` file."""
    out = Path(path)
    out.write_text(to_pnml(net))
    return out


def load_pnml(path: Union[str, Path]) -> PetriNet:
    """Read a net written by :func:`save_pnml`."""
    return from_pnml(Path(path).read_text())
