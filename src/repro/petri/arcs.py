"""Arcs: the wiring between places and transitions.

Three kinds, matching EDSPN practice:

- ``INPUT``  (place → transition): the transition needs ``multiplicity``
  tokens in the place to be enabled, and consumes them when firing.
- ``OUTPUT`` (transition → place): firing deposits ``multiplicity`` tokens.
- ``INHIBITOR`` (place ⊸ transition): the transition is enabled only while
  the place holds *fewer than* ``multiplicity`` tokens; nothing is consumed.
  With the default multiplicity 1 this is the classical zero-test the
  paper's Figure 3 uses on ``Active`` and ``CPU_Buffer`` ("the small circle
  at the ends of the arcs … specify this inverse logic").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["ArcKind", "Arc"]


class ArcKind(enum.Enum):
    """The role an arc plays in the token game."""

    INPUT = "input"
    OUTPUT = "output"
    INHIBITOR = "inhibitor"


@dataclass(frozen=True)
class Arc:
    """A single arc.

    Attributes
    ----------
    place:
        Place name.
    transition:
        Transition name.
    kind:
        One of :class:`ArcKind`.
    multiplicity:
        Token weight; must be >= 1.
    """

    place: str
    transition: str
    kind: ArcKind
    multiplicity: int = 1

    def __post_init__(self) -> None:
        if self.multiplicity < 1:
            raise ValueError(
                f"arc multiplicity must be >= 1, got {self.multiplicity} "
                f"on {self.place!r}<->{self.transition!r}"
            )
        if not isinstance(self.kind, ArcKind):
            raise TypeError(f"kind must be an ArcKind, got {self.kind!r}")

    def describe(self) -> str:
        """Human-readable one-liner for diagnostics and dot export."""
        symbol = {
            ArcKind.INPUT: "->",
            ArcKind.OUTPUT: "<-",
            ArcKind.INHIBITOR: "-o",
        }[self.kind]
        mult = f" x{self.multiplicity}" if self.multiplicity != 1 else ""
        return f"{self.place} {symbol} {self.transition}{mult}"
