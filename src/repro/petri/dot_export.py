"""Graphviz DOT export for nets and reachability graphs.

Purely textual — no graphviz dependency.  Paste the output into any DOT
renderer to get diagrams in the style of the paper's Figures 1 and 3:
places as circles (token count inside), immediate transitions as thin black
bars, timed transitions as open rectangles, inhibitor arcs with the ``odot``
arrowhead (the paper's "small circle at the ends of the arcs").
"""

from __future__ import annotations

from typing import List

from repro.des.distributions import Deterministic, Exponential
from repro.petri.arcs import ArcKind
from repro.petri.net import PetriNet
from repro.petri.transitions import TimedTransition

__all__ = ["to_dot", "reachability_to_dot"]


def _transition_label(t) -> str:
    if t.is_immediate:
        return f"{t.name}\\nprio {t.priority}"
    dist = t.distribution
    if isinstance(dist, Exponential):
        return f"{t.name}\\nexp({dist.rate:g})"
    if isinstance(dist, Deterministic):
        return f"{t.name}\\ndet({dist.value:g})"
    return f"{t.name}\\n{type(dist).__name__}"


def to_dot(net: PetriNet, rankdir: str = "LR") -> str:
    """Render *net* as a DOT digraph string."""
    lines: List[str] = [
        f'digraph "{net.name}" {{',
        f"  rankdir={rankdir};",
        "  node [fontsize=10];",
    ]
    for place in net.places:
        label = place.name if place.initial == 0 else f"{place.name}\\n({place.initial})"
        lines.append(
            f'  "{place.name}" [shape=circle, label="{label}", width=0.6];'
        )
    for t in net.transitions:
        if t.is_immediate:
            lines.append(
                f'  "{t.name}" [shape=box, style=filled, fillcolor=black, '
                f'fontcolor=white, height=0.12, label="{_transition_label(t)}"];'
            )
        else:
            lines.append(
                f'  "{t.name}" [shape=box, label="{_transition_label(t)}"];'
            )
    for arc in net.arcs:
        mult = f' [label="{arc.multiplicity}"]' if arc.multiplicity != 1 else ""
        if arc.kind is ArcKind.INPUT:
            lines.append(f'  "{arc.place}" -> "{arc.transition}"{mult};')
        elif arc.kind is ArcKind.OUTPUT:
            lines.append(f'  "{arc.transition}" -> "{arc.place}"{mult};')
        else:
            style = ' [arrowhead=odot'
            if arc.multiplicity != 1:
                style += f', label="{arc.multiplicity}"'
            style += "]"
            lines.append(f'  "{arc.place}" -> "{arc.transition}"{style};')
    lines.append("}")
    return "\n".join(lines)


def reachability_to_dot(graph, max_nodes: int = 200) -> str:
    """Render a reachability graph (tangible = ellipse, vanishing = dashed)."""
    lines: List[str] = [
        f'digraph "reachability_{graph.net.name}" {{',
        "  rankdir=LR;",
        "  node [fontsize=9];",
    ]
    n = min(graph.n_markings, max_nodes)
    for i in range(n):
        m = graph.markings[i]
        label = ",".join(
            f"{name}:{c}" for name, c in m.as_dict(skip_zero=True).items()
        ) or "empty"
        style = "solid" if graph.tangible[i] else "dashed"
        lines.append(f'  m{i} [label="{label}", style={style}];')
    for i in range(n):
        for e in graph.edges_out[i]:
            if e.target >= n:
                continue
            t_name = graph.transition_names[e.transition_index]
            label = t_name
            if e.probability is not None:
                label += f" ({e.probability:.3g})"
            lines.append(f'  m{e.source} -> m{e.target} [label="{label}"];')
    if graph.n_markings > max_nodes:
        lines.append(
            f'  truncated [shape=plaintext, label="… {graph.n_markings - max_nodes} more"];'
        )
    lines.append("}")
    return "\n".join(lines)
