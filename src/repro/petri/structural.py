"""Structural net analysis: siphons, traps, bounds, dead transitions.

Everything in this module works on the *structure* of a net — incidence
matrix, pre/post sets, invariants — and never explores the state space, so
every check here costs milliseconds even when the reachability graph would
have millions of markings.  This is the analytical front line the
``repro.verify`` lint subsystem builds on:

- **siphons and traps** — a *siphon* is a place set that, once empty,
  stays empty (every transition producing into it also consumes from it);
  a *trap* is the dual (once marked, stays marked).  Commoner's theorem
  turns them into a deadlock-freedom proof: if every minimal siphon
  contains an initially marked trap, an ordinary free-choice net cannot
  deadlock (and for general ordinary nets the condition still implies
  every siphon stays marked, ruling out the empty-siphon deadlocks);
- **structural boundedness** — a place covered by a semi-positive
  P-invariant ``y`` is bounded by ``floor(y . M0 / y_p)`` in *every*
  reachable marking, no exploration required; declared capacities bound
  places too (capacity semantics disable over-filling transitions);
- **structurally dead transitions** — a transition whose input places can
  never all be marked (by a token-flow over-approximation) can never fire;
- **immediate-conflict detection** — equal-priority immediates sharing an
  input place resolve by weight; leaving every weight at the 1.0 default
  is the classic GSPN modelling bug (a silent 50/50 split), and
  non-free-choice conflicts risk *confusion* (conflict resolution depends
  on interleaving order).

All analyses degrade honestly: the siphon search carries a node budget and
reports ``complete=False`` instead of silently truncating, and every proof
that only holds for the inhibitor-free/unit-weight skeleton says so via
:class:`CommonerResult.qualifications`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.petri.invariants import p_invariants_detailed
from repro.petri.net import PetriNet
from repro.petri.transitions import ImmediateTransition

__all__ = [
    "CommonerResult",
    "ConflictSet",
    "SiphonSearchResult",
    "commoner_check",
    "immediate_conflicts",
    "maximal_trap_within",
    "minimal_siphons",
    "minimal_traps",
    "structural_bounds",
    "structurally_dead_transitions",
]

#: Default node budget of the branch-and-bound siphon enumeration.  The
#: search tree is exponential in the worst case (minimal-siphon counting is
#: NP-hard); past this many expanded nodes the result is flagged
#: ``complete=False`` instead of silently dropping siphons.
SIPHON_NODE_BUDGET = 20_000


# --------------------------------------------------------------------- #
# pre/post structure
# --------------------------------------------------------------------- #
def _arc_sets(
    net: PetriNet,
) -> Tuple[List[str], List[Set[int]], List[Set[int]]]:
    """``(place_names, inputs_of_transition, outputs_of_transition)``.

    Sets of place indices; inhibitor arcs are not token flow and are
    excluded (callers that need them qualify their proofs instead).
    """
    compiled = net.compile()
    t_in = [set(p for p, _ in arcs) for arcs in compiled.inputs]
    t_out = [set(p for p, _ in arcs) for arcs in compiled.outputs]
    return list(compiled.place_names), t_in, t_out


@dataclass(frozen=True)
class SiphonSearchResult:
    """Minimal siphons (or traps), with an honesty flag.

    Attributes
    ----------
    sets:
        Inclusion-minimal place-name sets, sorted smallest first.
    complete:
        ``False`` when the search hit its node budget — *sets* is then a
        subset of the true minimal family and absence of a siphon proves
        nothing.
    nodes_expanded:
        Search-tree nodes visited (for budget diagnostics).
    """

    sets: Tuple[FrozenSet[str], ...]
    complete: bool
    nodes_expanded: int


def _minimal_closed_sets(
    n_places: int,
    t_in: Sequence[Set[int]],
    t_out: Sequence[Set[int]],
    budget: int,
) -> Tuple[List[FrozenSet[int]], bool, int]:
    """Enumerate minimal sets ``S`` with ``pre(S) subset-of post(S)``.

    With ``t_in``/``t_out`` the transition input/output place sets this
    yields siphons; with the roles swapped it yields traps.  Classic
    branch-and-complete: seed ``S = {p}``; while some transition produces
    into ``S`` without consuming from it, branch on which of its input
    places to add (a transition with no inputs kills the branch — no
    siphon can contain its outputs).
    """
    producers_into: List[List[int]] = [[] for _ in range(n_places)]
    for ti, outs in enumerate(t_out):
        for p in outs:
            producers_into[p].append(ti)

    found: List[FrozenSet[int]] = []
    nodes = 0
    complete = True

    def violating(S: Set[int]) -> Optional[int]:
        for p in S:
            for ti in producers_into[p]:
                if not (t_in[ti] & S):
                    return ti
        return None

    for seed in range(n_places):
        stack: List[Set[int]] = [{seed}]
        while stack:
            if nodes >= budget:
                complete = False
                stack.clear()
                break
            S = stack.pop()
            nodes += 1
            ti = violating(S)
            if ti is None:
                fs = frozenset(S)
                if not any(existing <= fs for existing in found):
                    found = [f for f in found if not fs <= f]
                    found.append(fs)
                continue
            if not t_in[ti]:
                continue  # source transition: no siphon contains its outputs
            for p in sorted(t_in[ti]):
                stack.append(S | {p})
        if not complete:
            break

    found.sort(key=lambda s: (len(s), sorted(s)))
    return found, complete, nodes


def minimal_siphons(
    net: PetriNet, budget: int = SIPHON_NODE_BUDGET
) -> SiphonSearchResult:
    """All inclusion-minimal siphons of *net* (up to the node *budget*).

    A siphon is a non-empty place set ``S`` such that every transition
    with an output arc into ``S`` also has an input arc from ``S`` — once
    ``S`` is token-free it stays token-free forever.  An unavoidably
    emptied siphon is how ordinary nets deadlock, which is what makes the
    minimal-siphon family worth enumerating.
    """
    names, t_in, t_out = _arc_sets(net)
    sets, complete, nodes = _minimal_closed_sets(
        len(names), t_in, t_out, budget
    )
    return SiphonSearchResult(
        sets=tuple(frozenset(names[p] for p in s) for s in sets),
        complete=complete,
        nodes_expanded=nodes,
    )


def minimal_traps(
    net: PetriNet, budget: int = SIPHON_NODE_BUDGET
) -> SiphonSearchResult:
    """All inclusion-minimal traps of *net* (the arc-reversed dual).

    A trap is a non-empty place set ``S`` such that every transition
    consuming from ``S`` also produces into ``S`` — once marked, ``S``
    can never be emptied again.
    """
    names, t_in, t_out = _arc_sets(net)
    sets, complete, nodes = _minimal_closed_sets(
        len(names), t_out, t_in, budget
    )
    return SiphonSearchResult(
        sets=tuple(frozenset(names[p] for p in s) for s in sets),
        complete=complete,
        nodes_expanded=nodes,
    )


def maximal_trap_within(net: PetriNet, places: Sequence[str]) -> FrozenSet[str]:
    """The unique maximal trap contained in *places* (possibly empty).

    Fixpoint deletion: while some transition consumes from the candidate
    set without producing into it, its consumed places cannot belong to
    any trap inside *places* and are removed.
    """
    names, t_in, t_out = _arc_sets(net)
    index = {name: i for i, name in enumerate(names)}
    Q: Set[int] = set()
    for name in places:
        if name not in index:
            raise KeyError(f"unknown place {name!r}")
        Q.add(index[name])
    changed = True
    while changed and Q:
        changed = False
        for ti in range(len(t_in)):
            taken = t_in[ti] & Q
            if taken and not (t_out[ti] & Q):
                Q -= taken
                changed = True
    return frozenset(names[p] for p in Q)


# --------------------------------------------------------------------- #
# Commoner's deadlock-freedom condition
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class CommonerResult:
    """Outcome of the siphon/trap (Commoner) deadlock-freedom check.

    Attributes
    ----------
    holds:
        Every minimal siphon contains an initially marked trap.  For an
        *ordinary* net (unit arc weights, no inhibitors) this proves no
        reachable marking is dead; :attr:`qualifications` lists the
        features that restrict the proof to the net's skeleton.
    siphons:
        The minimal-siphon search result the verdict is based on.
    unmarked_siphons:
        Minimal siphons whose maximal internal trap is empty or initially
        unmarked — the potential deadlock carriers.
    marked_traps:
        For each satisfied siphon, the marked trap inside it.
    qualifications:
        Net features (inhibitor arcs, guards, arc weights > 1) under
        which the structural proof applies to the simplified skeleton
        rather than the full EDSPN semantics.
    """

    holds: bool
    siphons: SiphonSearchResult
    unmarked_siphons: Tuple[FrozenSet[str], ...]
    marked_traps: Dict[FrozenSet[str], FrozenSet[str]] = field(default_factory=dict)
    qualifications: Tuple[str, ...] = ()


def _skeleton_qualifications(net: PetriNet) -> Tuple[str, ...]:
    """Features that limit structural proofs to the net's skeleton."""
    compiled = net.compile()
    quals: List[str] = []
    if any(compiled.inhibitors):
        quals.append(
            "inhibitor arcs are ignored by siphon/trap analysis; the proof "
            "covers the inhibitor-free skeleton"
        )
    if compiled.guarded_indices:
        quals.append(
            "transition guards are ignored; the proof covers the "
            "guard-free skeleton"
        )
    if any(int(c) >= 0 for c in compiled.capacities):
        quals.append(
            "place capacities act as implicit inhibitors (a transition "
            "that would overfill a place is disabled); the proof covers "
            "the capacity-free skeleton"
        )
    if any(
        mult > 1
        for arcs in (compiled.inputs, compiled.outputs)
        for arc in arcs
        for _, mult in arc
    ):
        quals.append(
            "arc multiplicities > 1 are treated as 1; siphon emptiness "
            "is still permanent, but a marked siphon may hold too few "
            "tokens to enable its transitions"
        )
    return tuple(quals)


def commoner_check(
    net: PetriNet, budget: int = SIPHON_NODE_BUDGET
) -> CommonerResult:
    """Check Commoner's condition: marked trap inside every minimal siphon.

    When it holds (and the siphon search was complete) no siphon can ever
    be emptied, which for ordinary nets rules out dead markings.  When it
    fails, :attr:`CommonerResult.unmarked_siphons` names the candidate
    deadlock carriers — the places whose joint emptiness would freeze
    part of the net.
    """
    initial = {
        p.name: p.initial for p in net.places
    }
    siphons = minimal_siphons(net, budget)
    unmarked: List[FrozenSet[str]] = []
    marked_traps: Dict[FrozenSet[str], FrozenSet[str]] = {}
    for siphon in siphons.sets:
        trap = maximal_trap_within(net, sorted(siphon))
        if trap and any(initial[p] > 0 for p in trap):
            marked_traps[siphon] = trap
        else:
            unmarked.append(siphon)
    return CommonerResult(
        holds=not unmarked and siphons.complete,
        siphons=siphons,
        unmarked_siphons=tuple(unmarked),
        marked_traps=marked_traps,
        qualifications=_skeleton_qualifications(net),
    )


# --------------------------------------------------------------------- #
# structural boundedness
# --------------------------------------------------------------------- #
def structural_bounds(net: PetriNet) -> Dict[str, Optional[int]]:
    """Per-place token bounds provable without exploration.

    For every semi-positive P-invariant ``y`` and place ``p`` in its
    support, ``M[p] <= floor(y . M0 / y_p)`` in every reachable marking;
    a declared capacity bounds a place as well (capacity semantics
    disable transitions that would overfill it).  Places provable by
    neither route map to ``None`` — *not proven bounded*, which is weaker
    than *unbounded*.

    Note the invariant search is heuristic and budgeted
    (:func:`repro.petri.invariants.p_invariants_detailed`): a ``None``
    under a truncated search proves even less.
    """
    compiled = net.compile()
    names = compiled.place_names
    m0 = compiled.initial_marking
    bounds: Dict[str, Optional[int]] = {}
    for i, name in enumerate(names):
        cap = int(compiled.capacities[i])
        bounds[name] = cap if cap >= 0 else None
    for inv in p_invariants_detailed(net).invariants:
        total = sum(w * int(m0[names.index(p)]) for p, w in inv.items())
        for p, w in inv.items():
            bound = total // w
            prev = bounds[p]
            bounds[p] = bound if prev is None else min(prev, bound)
    return bounds


# --------------------------------------------------------------------- #
# structurally dead transitions
# --------------------------------------------------------------------- #
def structurally_dead_transitions(net: PetriNet) -> List[str]:
    """Transitions that can *never* fire, by token-flow over-approximation.

    Fixpoint over "markable" places: a place is markable if it starts
    marked or some transition whose input places are all markable outputs
    into it.  The relaxation ignores inhibitors, guards, capacities and
    arc multiplicities — each of which can only *disable* firings — so a
    transition with a never-markable input place is dead under the real
    semantics too.  (The converse does not hold: a reported-live
    transition may still be dead behaviourally.)
    """
    names, t_in, t_out = _arc_sets(net)
    compiled = net.compile()
    markable = {
        i for i in range(len(names)) if compiled.initial_marking[i] > 0
    }
    fireable: Set[int] = set()
    changed = True
    while changed:
        changed = False
        for ti in range(len(t_in)):
            if ti in fireable:
                continue
            if t_in[ti] <= markable:
                fireable.add(ti)
                new = t_out[ti] - markable
                if new:
                    markable |= new
                changed = True
    return [
        compiled.transitions[ti].name
        for ti in range(len(t_in))
        if ti not in fireable
    ]


# --------------------------------------------------------------------- #
# immediate-conflict / confusion detection
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ConflictSet:
    """Equal-priority immediate transitions competing for a place.

    Attributes
    ----------
    place:
        The shared input place.
    transitions:
        The competing immediate transitions (name order).
    priority:
        Their common priority level.
    weights:
        Their weights, aligned with :attr:`transitions`.
    untied_default_weights:
        Every competitor still carries the 1.0 default weight — the
        conflict resolves as a uniform split the modeller probably never
        chose.
    free_choice:
        All competitors have this single place as their entire input set,
        so the conflict is resolved by weights alone.  ``False`` means
        *confusion* is possible: whether a competitor is enabled depends
        on other places, so the outcome distribution depends on
        interleaving order.
    """

    place: str
    transitions: Tuple[str, ...]
    priority: int
    weights: Tuple[float, ...]
    untied_default_weights: bool
    free_choice: bool


def immediate_conflicts(net: PetriNet) -> List[ConflictSet]:
    """Detect weight-resolved conflicts among immediate transitions.

    Groups immediates by shared input place and equal priority; a group of
    two or more is a conflict the stochastic semantics resolves by weight.
    """
    compiled = net.compile()
    by_place_priority: Dict[Tuple[int, int], List[int]] = {}
    for ti in compiled.immediate_indices:
        trans = compiled.transitions[ti]
        assert isinstance(trans, ImmediateTransition)
        for p, _ in compiled.inputs[ti]:
            by_place_priority.setdefault((p, trans.priority), []).append(ti)
    conflicts: List[ConflictSet] = []
    for (p, priority), members in sorted(by_place_priority.items()):
        if len(members) < 2:
            continue
        weights = tuple(
            float(compiled.transitions[ti].weight) for ti in members  # type: ignore[attr-defined]
        )
        free_choice = all(
            {q for q, _ in compiled.inputs[ti]} == {p} for ti in members
        )
        conflicts.append(
            ConflictSet(
                place=compiled.place_names[p],
                transitions=tuple(
                    compiled.transitions[ti].name for ti in members
                ),
                priority=priority,
                weights=weights,
                untied_default_weights=all(w == 1.0 for w in weights),
                free_choice=free_choice,
            )
        )
    return conflicts
