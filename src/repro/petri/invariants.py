"""Structural analysis: incidence matrix, P-invariants, T-invariants.

A **P-invariant** (place invariant) is an integer weighting ``y >= 0`` of
the places with ``C^T y = 0`` where ``C`` is the incidence matrix: the
weighted token sum ``y . M`` is constant in every reachable marking.  The
paper's CPU net has three unit P-invariants —

``Stand_By + Power_Up + CPU_ON = 1``, ``Idle + Active = 1``,
``P0 + P1 = 1``

— which is *why* its time-averaged token counts are directly the paper's
steady-state percentages.  This module computes such invariants from the
net structure (no simulation) using exact integer Gaussian elimination over
the rationals, so the test suite can *derive* the invariants it asserts.

A **T-invariant** is the dual: a firing-count vector ``x >= 0`` with
``C x = 0`` — a cycle of firings that reproduces the marking, the
skeleton of the net's steady-state cycles.

Limitations (documented, standard): the computed basis spans the invariant
space; minimal-support semi-positive invariants are extracted heuristically
by searching small non-negative combinations, which is sufficient for the
modest nets this library targets.  The combination search is **budgeted**:
with ``b`` basis vectors it would otherwise enumerate ``O((2b)^3)``
candidate sums, so it stops after :data:`COMBINATION_BUDGET` candidates and
reports the truncation (``InvariantSearchResult.truncated``) instead of
silently returning a partial family — the lint layer
(:mod:`repro.verify`) surfaces that as diagnostic ``PN006``.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from fractions import Fraction
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.petri.net import PetriNet

__all__ = [
    "COMBINATION_BUDGET",
    "InvariantSearchResult",
    "incidence_matrix",
    "invariant_report",
    "p_invariants",
    "p_invariants_detailed",
    "t_invariants",
    "t_invariants_detailed",
    "verify_p_invariant",
]

logger = logging.getLogger(__name__)

#: Cap on candidate combinations the semi-positive extraction considers.
#: The search sums up to ``max_terms`` of the ``2b`` signed basis vectors,
#: i.e. ``C(2b, 2) + C(2b, 3)`` candidates for the default ``max_terms=3``
#: — about 43k at ``b = 16``, far past any net this library models.  When
#: the cap is hit the result is *flagged truncated*, never silently short.
COMBINATION_BUDGET = 50_000


@dataclass(frozen=True)
class InvariantSearchResult:
    """Semi-positive invariants plus the search's own honesty report.

    Attributes
    ----------
    invariants:
        ``{node name: weight}`` per invariant (places for P-invariants,
        transitions for T-invariants), minimal-support first.
    truncated:
        The combination search hit :data:`COMBINATION_BUDGET` before
        exhausting the candidate space — the family may be incomplete,
        so a *missing* invariant proves nothing.
    candidates_tried:
        Combination sums actually considered.
    basis_size:
        Dimension of the exact (rational) invariant space; when this is
        0 the net provably has no invariants at all and ``truncated`` is
        always ``False``.
    """

    invariants: Tuple[Dict[str, int], ...]
    truncated: bool
    candidates_tried: int
    basis_size: int


def incidence_matrix(net: PetriNet) -> np.ndarray:
    """The |P| x |T| incidence matrix C: C[p, t] = produced - consumed.

    Inhibitor arcs do not move tokens and therefore do not appear.
    """
    compiled = net.compile()
    n_p = len(compiled.place_names)
    n_t = len(compiled.transitions)
    C = np.zeros((n_p, n_t), dtype=np.int64)
    for ti in range(n_t):
        for p, mult in compiled.inputs[ti]:
            C[p, ti] -= mult
        for p, mult in compiled.outputs[ti]:
            C[p, ti] += mult
    return C


def _rational_nullspace(A: np.ndarray) -> List[List[Fraction]]:
    """Exact nullspace basis of an integer matrix via fraction-free
    Gauss-Jordan elimination (columns of A are the variables)."""
    rows, cols = A.shape
    M = [[Fraction(int(A[r, c])) for c in range(cols)] for r in range(rows)]
    pivot_cols: List[int] = []
    r = 0
    for c in range(cols):
        # find pivot
        pivot = None
        for rr in range(r, rows):
            if M[rr][c] != 0:
                pivot = rr
                break
        if pivot is None:
            continue
        M[r], M[pivot] = M[pivot], M[r]
        inv = M[r][c]
        M[r] = [v / inv for v in M[r]]
        for rr in range(rows):
            if rr != r and M[rr][c] != 0:
                factor = M[rr][c]
                M[rr] = [a - factor * b for a, b in zip(M[rr], M[r])]
        pivot_cols.append(c)
        r += 1
        if r == rows:
            break
    free_cols = [c for c in range(cols) if c not in pivot_cols]
    basis: List[List[Fraction]] = []
    for free in free_cols:
        vec = [Fraction(0)] * cols
        vec[free] = Fraction(1)
        for row_idx, pc in enumerate(pivot_cols):
            vec[pc] = -M[row_idx][free]
        basis.append(vec)
    return basis


def _to_integer_vector(vec: Sequence[Fraction]) -> np.ndarray:
    """Scale a rational vector to the smallest integer multiple."""
    denominators = [v.denominator for v in vec]
    lcm = 1
    for d in denominators:
        lcm = lcm * d // np.gcd(lcm, d)
    ints = np.array([int(v * lcm) for v in vec], dtype=np.int64)
    g = int(np.gcd.reduce(np.abs(ints[ints != 0]))) if np.any(ints) else 1
    return ints // max(g, 1)


def _semi_positive_combinations(
    basis: List[np.ndarray],
    max_terms: int = 3,
    budget: int = COMBINATION_BUDGET,
) -> Tuple[List[np.ndarray], bool, int]:
    """Search small integer combinations of basis vectors that are >= 0.

    Tries each vector and its negation, then pairwise/triple sums — enough
    to recover the unit invariants of practically structured nets.  The
    enumeration stops after *budget* candidate sums; the returned triple is
    ``(minimal_invariants, truncated, candidates_tried)``.
    """
    candidates: List[np.ndarray] = []
    tried = 0
    truncated = False

    def consider(vec: np.ndarray) -> None:
        if not np.any(vec):
            return
        if np.all(vec >= 0):
            key = vec // max(int(np.gcd.reduce(vec[vec != 0])), 1)
            for existing in candidates:
                if np.array_equal(existing, key):
                    return
            candidates.append(key)

    signed = []
    for b in basis:
        signed.append(b)
        signed.append(-b)
        tried += 2
        consider(b)
        consider(-b)
    for k in range(2, max_terms + 1):
        if truncated:
            break
        for combo in combinations(signed, k):
            if tried >= budget:
                truncated = True
                break
            tried += 1
            consider(np.sum(combo, axis=0))
    # prefer small supports, then small weights
    candidates.sort(key=lambda v: (np.count_nonzero(v), int(np.abs(v).sum())))
    # drop candidates whose support strictly contains another's
    minimal: List[np.ndarray] = []
    for v in candidates:
        support = set(np.nonzero(v)[0])
        if any(set(np.nonzero(m)[0]) <= support for m in minimal):
            continue
        minimal.append(v)
    return minimal, truncated, tried


def p_invariants_detailed(
    net: PetriNet, budget: int = COMBINATION_BUDGET
) -> InvariantSearchResult:
    """Semi-positive P-invariants with the search's truncation report.

    Every returned weighting satisfies ``weights . M = weights . M0`` for
    all reachable markings M (checked exactly against the incidence
    matrix before returning).  ``truncated=True`` means the heuristic
    extraction gave up before covering the candidate space — callers
    doing boundedness proofs must treat missing coverage as *unknown*,
    not as *unbounded* (the lint layer emits ``PN006`` for this).
    """
    C = incidence_matrix(net)
    basis = [_to_integer_vector(v) for v in _rational_nullspace(C.T)]
    names = net.compile().place_names
    vectors, truncated, tried = _semi_positive_combinations(
        basis, budget=budget
    )
    result = []
    for vec in vectors:
        assert np.all(vec @ C == 0)
        result.append(
            {names[i]: int(w) for i, w in enumerate(vec) if w != 0}
        )
    if truncated:
        logger.warning(
            "p_invariants: combination search truncated after %d candidates "
            "(budget %d, basis size %d); the invariant family may be "
            "incomplete",
            tried,
            budget,
            len(basis),
        )
    return InvariantSearchResult(
        invariants=tuple(result),
        truncated=truncated,
        candidates_tried=tried,
        basis_size=len(basis),
    )


def p_invariants(net: PetriNet) -> List[Dict[str, int]]:
    """Semi-positive P-invariants as ``{place: weight}`` dictionaries.

    Compatibility wrapper over :func:`p_invariants_detailed`; a truncated
    search is logged there rather than raised, so prefer the detailed
    variant when the *completeness* of the family matters.
    """
    return list(p_invariants_detailed(net).invariants)


def t_invariants_detailed(
    net: PetriNet, budget: int = COMBINATION_BUDGET
) -> InvariantSearchResult:
    """Semi-positive T-invariants with the search's truncation report.

    A T-invariant is a multiset of firings whose net marking effect is
    zero — firing them (in some realisable order) returns to the start.
    """
    C = incidence_matrix(net)
    basis = [_to_integer_vector(v) for v in _rational_nullspace(C)]
    names = [t.name for t in net.compile().transitions]
    vectors, truncated, tried = _semi_positive_combinations(
        basis, budget=budget
    )
    result = []
    for vec in vectors:
        assert np.all(C @ vec == 0)
        result.append(
            {names[i]: int(w) for i, w in enumerate(vec) if w != 0}
        )
    if truncated:
        logger.warning(
            "t_invariants: combination search truncated after %d candidates "
            "(budget %d, basis size %d)",
            tried,
            budget,
            len(basis),
        )
    return InvariantSearchResult(
        invariants=tuple(result),
        truncated=truncated,
        candidates_tried=tried,
        basis_size=len(basis),
    )


def t_invariants(net: PetriNet) -> List[Dict[str, int]]:
    """Semi-positive T-invariants as ``{transition: count}`` dictionaries.

    Compatibility wrapper over :func:`t_invariants_detailed`.
    """
    return list(t_invariants_detailed(net).invariants)


def verify_p_invariant(
    net: PetriNet, weights: Dict[str, int]
) -> Tuple[bool, int]:
    """Check a claimed P-invariant structurally.

    Returns ``(is_invariant, weighted_initial_token_sum)``; the boolean is
    True iff ``weights . C = 0`` so the weighted sum is conserved by every
    firing.
    """
    compiled = net.compile()
    names = compiled.place_names
    vec = np.zeros(len(names), dtype=np.int64)
    for place, w in weights.items():
        vec[names.index(place)] = w
    C = incidence_matrix(net)
    conserved = bool(np.all(vec @ C == 0))
    initial = int(vec @ compiled.initial_marking)
    return conserved, initial


def invariant_report(net: PetriNet) -> str:
    """Human-readable structural report (used by examples and docs)."""
    lines = [f"Structural invariants of net {net.name!r}:"]
    p_inv = p_invariants(net)
    if p_inv:
        lines.append("  P-invariants (conserved weighted token sums):")
        compiled = net.compile()
        m0 = compiled.initial_marking
        names = compiled.place_names
        for inv in p_inv:
            total = sum(w * m0[names.index(p)] for p, w in inv.items())
            terms = " + ".join(
                (f"{w}*{p}" if w != 1 else p) for p, w in inv.items()
            )
            lines.append(f"    {terms} = {total}")
    else:
        lines.append("  no semi-positive P-invariants found")
    t_inv = t_invariants(net)
    if t_inv:
        lines.append("  T-invariants (cyclic firing multisets):")
        for inv in t_inv:
            terms = " + ".join(
                (f"{w}*{t}" if w != 1 else t) for t, w in inv.items()
            )
            lines.append(f"    {terms}")
    else:
        lines.append("  no semi-positive T-invariants found")
    return "\n".join(lines)
