"""Exact CTMC solution of exponential-only nets (GSPNs).

A Petri net whose timed transitions are all exponential is a Generalized
Stochastic Petri Net; its tangible reachability graph *is* a CTMC.  This
module performs the classical reduction:

1. explore the reachability graph (:mod:`repro.petri.analysis`),
2. eliminate vanishing markings by redistributing each timed edge that
   lands on a vanishing marking over the tangible markings it reaches in
   zero time (absorption probabilities of the immediate jump chain),
3. assemble the tangible-to-tangible rate matrix and wrap it in a
   :class:`repro.markov.ctmc.CTMC`.

The reduction is split into two phases because the reachability graph — and
the vanishing-marking elimination, which depends only on immediate weights —
is *rate-independent*: an exponential transition's rate never affects which
markings are reachable, only how fast the chain moves between them.
:class:`GSPNSolver` exploits that by exploring once and caching a sparse
*rate template* of the tangible generator; :meth:`GSPNSolver.solve` then
re-binds new rates and assembles a fresh CTMC in ``O(nnz)`` instead of
re-running the whole exploration.  This is what makes parameter sweeps
(:mod:`repro.sweep`) orders of magnitude cheaper than pointwise reduction.

This is how the library validates its own simulator: for any GSPN both the
token game and the CTMC must agree on steady-state token averages, and for
textbook nets (M/M/1/K, machine-repair) the CTMC must agree with queueing
closed forms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np
from scipy import sparse

from repro import obs
from repro.markov.ctmc import (
    CTMC,
    SPARSE_AUTO_THRESHOLD,
    SolverCache,
    resolve_steady_state_method,
)
from repro.petri.analysis import (
    ReachabilityGraph,
    ReachabilityOptions,
    explore_reachability,
)
from repro.petri.marking import Marking
from repro.petri.net import NetStructureError, PetriNet
from repro.petri.transitions import TimedTransition

__all__ = ["GSPNSolution", "GSPNSolver", "ctmc_from_net"]


@dataclass
class GSPNSolution:
    """A solved GSPN: the CTMC plus marking bookkeeping.

    ``rates`` maps each exponential transition name to the rate the chain
    was assembled with (the net's own rates, unless they were re-bound via
    :meth:`GSPNSolver.solve`).  The steady-state vector is solved once —
    with the ``solver_method``/``solver_tol``/``solver_max_iter`` the
    solution was created with (see :meth:`CTMC.steady_state`) — and
    cached; every query method reuses it.
    """

    ctmc: CTMC
    tangible_markings: List[Marking]
    initial_distribution: np.ndarray
    graph: ReachabilityGraph
    rates: Dict[str, float] = field(default_factory=dict)
    solver_method: str = "auto"
    solver_tol: Optional[float] = None
    solver_max_iter: Optional[int] = None
    _pi: Optional[np.ndarray] = field(default=None, repr=False, compare=False)
    _enabled_rows: Dict[str, np.ndarray] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.rates:
            compiled = self.graph.net.compile()
            self.rates = {
                t.name: t.rate
                for t in compiled.transitions
                if isinstance(t, TimedTransition) and t.is_exponential
            }

    def _pi_vector(self) -> np.ndarray:
        """The stationary vector, solved once per solution instance."""
        if self._pi is None:
            self._pi = self.ctmc.steady_state(
                method=self.solver_method,
                tol=self.solver_tol,
                max_iter=self.solver_max_iter,
            )
        return self._pi

    def steady_state(self) -> Dict[Marking, float]:
        """Stationary probability per tangible marking."""
        pi = self._pi_vector()
        return {m: float(pi[i]) for i, m in enumerate(self.tangible_markings)}

    def mean_tokens(self, place: str) -> float:
        """Steady-state expected token count in *place*.

        This is the analytical counterpart of the simulator's time-averaged
        token statistic.
        """
        pi = self._pi_vector()
        counts = np.array([m[place] for m in self.tangible_markings], dtype=float)
        return float(pi @ counts)

    def probability_positive(self, place: str) -> float:
        """Steady-state probability that *place* is non-empty."""
        pi = self._pi_vector()
        indicator = np.array(
            [1.0 if m[place] >= 1 else 0.0 for m in self.tangible_markings]
        )
        return float(pi @ indicator)

    def throughput(self, transition: str) -> float:
        """Steady-state firing rate of an exponential transition."""
        graph = self.graph
        try:
            ti = graph.transition_names.index(transition)
        except ValueError:
            raise KeyError(f"unknown transition {transition!r}") from None
        compiled = graph.net.compile()
        trans = compiled.transitions[ti]
        if not isinstance(trans, TimedTransition) or not trans.is_exponential:
            raise ValueError(f"{transition!r} is not an exponential transition")
        rate = self.rates[transition]
        pi = self._pi_vector()
        enabled = self._enabled_rows.get(transition)
        if enabled is None:
            enabled = np.array(
                [
                    1.0 if compiled.enabled(ti, m.counts) else 0.0
                    for m in self.tangible_markings
                ]
            )
            self._enabled_rows[transition] = enabled
        return float(pi @ enabled) * rate

    def accumulated_reward(
        self, rewards: Mapping[Marking, float] | np.ndarray, t: float, **kwargs
    ) -> float:
        """Expected accumulated reward over ``[0, t]`` from the net's
        initial marking (see :meth:`repro.markov.ctmc.CTMC.accumulated_reward`)."""
        return self.ctmc.accumulated_reward(
            self.initial_distribution, rewards, t, **kwargs
        )


class GSPNSolver:
    """Explore a GSPN once; solve it for arbitrary exponential rates.

    The expensive, rate-independent work — reachability exploration,
    vanishing-marking absorption, and the sparse sparsity pattern of the
    tangible generator — happens in the constructor.  Each :meth:`solve`
    call then costs one ``O(nnz)`` assembly plus the linear-algebra solve,
    which is what a parameter sweep amortises.

    Parameters
    ----------
    net:
        An exponential-only net (every timed transition ``Exponential``).
    options:
        Reachability exploration limits.

    Raises
    ------
    NetStructureError
        If any timed transition is non-exponential, the state space is not
        finite within ``options.max_markings``, or vanishing markings form
        a zero-time livelock.
    """

    def __init__(
        self, net: PetriNet, options: ReachabilityOptions = ReachabilityOptions()
    ) -> None:
        compiled = net.compile()
        for t in compiled.transitions:
            if isinstance(t, TimedTransition) and not t.is_exponential:
                raise NetStructureError(
                    f"transition {t.name!r} is {type(t.distribution).__name__}; "
                    "CTMC export needs all timed transitions exponential "
                    "(use the simulator, or the phase-type expansion in "
                    "repro.core.phase_type, for deterministic delays)"
                )

        with obs.span("prepare.explore") as sp:
            graph = explore_reachability(net, options)
            sp.set("markings", len(graph.markings))
        if not graph.complete:
            raise NetStructureError(
                f"state space exceeded {options.max_markings} markings; "
                "the net appears unbounded"
            )

        tangible = graph.tangible_indices()
        if not tangible:
            raise NetStructureError("no tangible markings (pure zero-time net)")
        t_pos = {m: i for i, m in enumerate(tangible)}
        absorption = graph.vanishing_absorption()

        self.net = net
        self.graph = graph
        self.markings = [graph.markings[i] for i in tangible]
        self.n = len(tangible)

        # ---- rate template: Q_offdiag[row, col] = sum coeff * rate[t] ---- #
        rows: List[int] = []
        cols: List[int] = []
        t_idx: List[int] = []
        coeff: List[float] = []
        for row, mi in enumerate(tangible):
            for e in graph.edges_out[mi]:
                trans = compiled.transitions[e.transition_index]
                assert isinstance(trans, TimedTransition)
                if graph.tangible[e.target]:
                    if e.target != mi:
                        rows.append(row)
                        cols.append(t_pos[e.target])
                        t_idx.append(e.transition_index)
                        coeff.append(1.0)
                else:
                    for tm, p in absorption[e.target].items():
                        if tm != mi:
                            rows.append(row)
                            cols.append(t_pos[tm])
                            t_idx.append(e.transition_index)
                            coeff.append(p)
        self._rows = np.asarray(rows, dtype=np.intp)
        self._cols = np.asarray(cols, dtype=np.intp)
        self._t_idx = np.asarray(t_idx, dtype=np.intp)
        self._coeff = np.asarray(coeff, dtype=np.float64)

        # rate-independent initial distribution (absorption uses immediate
        # weights only)
        init = np.zeros(self.n)
        if graph.tangible[graph.initial_index]:
            init[t_pos[graph.initial_index]] = 1.0
        else:
            for tm, p in absorption[graph.initial_index].items():
                init[t_pos[tm]] += p
        self._init = init

        self._exp_names: Dict[str, int] = {
            t.name: i
            for i, t in enumerate(compiled.transitions)
            if isinstance(t, TimedTransition) and t.is_exponential
        }
        self._base_rates = np.zeros(len(compiled.transitions))
        for name, i in self._exp_names.items():
            self._base_rates[i] = compiled.transitions[i].rate

        # shared across every sparse per-point CTMC: the sparsity pattern is
        # rate-independent, so one symbolic LU analysis — or one ILU
        # preconditioner plus the previous point's warm-start vector under
        # the iterative methods — serves a whole sweep
        self._factor_cache: SolverCache = SolverCache()

    @property
    def exponential_transitions(self) -> List[str]:
        """Names of the transitions whose rates :meth:`solve` can re-bind."""
        return list(self._exp_names)

    def tangible_edges(self) -> Tuple[np.ndarray, np.ndarray]:
        """Off-diagonal ``(rows, cols)`` of the tangible rate template.

        The template's sparsity pattern is rate-independent: an edge
        exists for *any* positive rates iff it exists here.  Chain-level
        preflight (:mod:`repro.verify`) classifies the communicating
        classes of exactly this graph, so diagnosing a sweep costs one
        linear pass instead of a solve.
        """
        return self._rows.copy(), self._cols.copy()

    def reset_warm_start(self) -> None:
        """Drop the iterative methods' warm-start vector.

        Called by sweep fan-out at chunk boundaries, where the previous
        solve belongs to a non-adjacent grid point; the shared symbolic
        analysis and preconditioner survive (they are rate-independent).
        """
        self._factor_cache.drop_warm_start()

    def _rate_vector(self, rates: Optional[Mapping[str, float]]) -> np.ndarray:
        vec = self._base_rates.copy()
        if rates:
            for name, rate in rates.items():
                if name not in self._exp_names:
                    raise KeyError(
                        f"{name!r} is not an exponential transition of the net "
                        f"(have: {sorted(self._exp_names)})"
                    )
                if not (rate > 0.0 and np.isfinite(rate)):
                    raise ValueError(
                        f"rate for {name!r} must be finite and > 0, got {rate}"
                    )
                vec[self._exp_names[name]] = float(rate)
        return vec

    def assemble_generator(
        self, rates: Optional[Mapping[str, float]] = None
    ) -> sparse.csr_matrix:
        """The tangible CSR generator under *rates* (defaults to the net's)."""
        return self._assemble(self._rate_vector(rates))

    def _assemble(self, rate_vec: np.ndarray) -> sparse.csr_matrix:
        data = self._coeff * rate_vec[self._t_idx]
        off = sparse.coo_matrix(
            (data, (self._rows, self._cols)), shape=(self.n, self.n)
        ).tocsr()
        exit_rates = np.asarray(off.sum(axis=1)).ravel()
        return (off - sparse.diags(exit_rates)).tocsr()

    def solve(
        self,
        rates: Optional[Mapping[str, float]] = None,
        backend: str = "auto",
        method: str = "auto",
        tol: Optional[float] = None,
        max_iter: Optional[int] = None,
    ) -> GSPNSolution:
        """Assemble and wrap the CTMC for *rates* (no re-exploration).

        Parameters
        ----------
        rates : mapping, optional
            ``{transition name: new exponential rate}`` overrides; omitted
            transitions keep the rate from the net definition.
        backend : {"auto", "dense", "sparse"}
            CTMC linear-algebra backend; ``"auto"`` goes sparse past
            :data:`~repro.markov.ctmc.SPARSE_AUTO_THRESHOLD` states.
        method : {"auto", "lu", "gmres", "power"}
            Steady-state solver (see :meth:`CTMC.steady_state`).  The
            iterative methods always run on the sparse generator and share
            this solver's warm-start cache, so consecutive solves of a
            sweep start from the previous point's solution.
        tol, max_iter : float, int, optional
            Convergence tolerance / iteration budget of the iterative
            methods; ignored by ``"lu"``.
        """
        resolved = resolve_steady_state_method(self.n, method)
        rate_vec = self._rate_vector(rates)
        Q = self._assemble(rate_vec)
        if resolved == "lu" and (
            backend == "dense"
            or (backend == "auto" and self.n <= SPARSE_AUTO_THRESHOLD)
        ):
            ctmc = CTMC(Q.toarray(), labels=self.markings, backend="dense")
        else:
            # iterative methods always solve sparsely and warm-start from
            # the shared cache, whatever the requested dense/sparse backend
            ctmc = CTMC(
                Q,
                labels=self.markings,
                backend="sparse" if resolved != "lu" else backend,
                factor_cache=self._factor_cache,
            )
        effective = {name: float(rate_vec[i]) for name, i in self._exp_names.items()}
        return GSPNSolution(
            ctmc=ctmc,
            tangible_markings=self.markings,
            initial_distribution=self._init.copy(),
            graph=self.graph,
            rates=effective,
            solver_method=method,
            solver_tol=tol,
            solver_max_iter=max_iter,
        )


def ctmc_from_net(
    net: PetriNet,
    options: ReachabilityOptions = ReachabilityOptions(),
    backend: str = "auto",
) -> GSPNSolution:
    """Reduce an exponential-only net to a CTMC over tangible markings.

    One-shot convenience over :class:`GSPNSolver`; when solving the same
    net structure for many rate points, build a ``GSPNSolver`` once and
    call :meth:`GSPNSolver.solve` per point instead.

    Raises
    ------
    NetStructureError
        If any timed transition is non-exponential, the state space is not
        finite within ``options.max_markings``, or vanishing markings form a
        zero-time livelock.
    """
    return GSPNSolver(net, options).solve(backend=backend)
