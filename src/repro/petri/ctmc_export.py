"""Exact CTMC solution of exponential-only nets (GSPNs).

A Petri net whose timed transitions are all exponential is a Generalized
Stochastic Petri Net; its tangible reachability graph *is* a CTMC.  This
module performs the classical reduction:

1. explore the reachability graph (:mod:`repro.petri.analysis`),
2. eliminate vanishing markings by redistributing each timed edge that
   lands on a vanishing marking over the tangible markings it reaches in
   zero time (absorption probabilities of the immediate jump chain),
3. assemble the tangible-to-tangible rate matrix and wrap it in a
   :class:`repro.markov.ctmc.CTMC`.

This is how the library validates its own simulator: for any GSPN both the
token game and the CTMC must agree on steady-state token averages, and for
textbook nets (M/M/1/K, machine-repair) the CTMC must agree with queueing
closed forms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.markov.ctmc import CTMC
from repro.petri.analysis import (
    ReachabilityGraph,
    ReachabilityOptions,
    explore_reachability,
)
from repro.petri.marking import Marking
from repro.petri.net import NetStructureError, PetriNet
from repro.petri.transitions import TimedTransition

__all__ = ["GSPNSolution", "ctmc_from_net"]


@dataclass
class GSPNSolution:
    """A solved GSPN: the CTMC plus marking bookkeeping."""

    ctmc: CTMC
    tangible_markings: List[Marking]
    initial_distribution: np.ndarray
    graph: ReachabilityGraph

    def steady_state(self) -> Dict[Marking, float]:
        """Stationary probability per tangible marking."""
        pi = self.ctmc.steady_state()
        return {m: float(pi[i]) for i, m in enumerate(self.tangible_markings)}

    def mean_tokens(self, place: str) -> float:
        """Steady-state expected token count in *place*.

        This is the analytical counterpart of the simulator's time-averaged
        token statistic.
        """
        pi = self.ctmc.steady_state()
        counts = np.array([m[place] for m in self.tangible_markings], dtype=float)
        return float(pi @ counts)

    def probability_positive(self, place: str) -> float:
        """Steady-state probability that *place* is non-empty."""
        pi = self.ctmc.steady_state()
        indicator = np.array(
            [1.0 if m[place] >= 1 else 0.0 for m in self.tangible_markings]
        )
        return float(pi @ indicator)

    def throughput(self, transition: str) -> float:
        """Steady-state firing rate of an exponential transition."""
        graph = self.graph
        try:
            ti = graph.transition_names.index(transition)
        except ValueError:
            raise KeyError(f"unknown transition {transition!r}") from None
        trans = graph.net.compile().transitions[ti]
        if not isinstance(trans, TimedTransition) or not trans.is_exponential:
            raise ValueError(f"{transition!r} is not an exponential transition")
        rate = trans.rate
        pi = self.ctmc.steady_state()
        compiled = graph.net.compile()
        total = 0.0
        for i, m in enumerate(self.tangible_markings):
            if compiled.enabled(ti, m.counts):
                total += float(pi[i]) * rate
        return total


def ctmc_from_net(
    net: PetriNet, options: ReachabilityOptions = ReachabilityOptions()
) -> GSPNSolution:
    """Reduce an exponential-only net to a CTMC over tangible markings.

    Raises
    ------
    NetStructureError
        If any timed transition is non-exponential, the state space is not
        finite within ``options.max_markings``, or vanishing markings form a
        zero-time livelock.
    """
    compiled = net.compile()
    for t in compiled.transitions:
        if isinstance(t, TimedTransition) and not t.is_exponential:
            raise NetStructureError(
                f"transition {t.name!r} is {type(t.distribution).__name__}; "
                "CTMC export needs all timed transitions exponential "
                "(use the simulator, or the phase-type expansion in "
                "repro.core.phase_type, for deterministic delays)"
            )

    graph = explore_reachability(net, options)
    if not graph.complete:
        raise NetStructureError(
            f"state space exceeded {options.max_markings} markings; "
            "the net appears unbounded"
        )

    tangible = graph.tangible_indices()
    if not tangible:
        raise NetStructureError("no tangible markings (pure zero-time net)")
    t_pos = {m: i for i, m in enumerate(tangible)}
    absorption = graph.vanishing_absorption()

    n = len(tangible)
    Q = np.zeros((n, n))
    for row, mi in enumerate(tangible):
        for e in graph.edges_out[mi]:
            trans = compiled.transitions[e.transition_index]
            assert isinstance(trans, TimedTransition)
            rate = trans.rate
            if graph.tangible[e.target]:
                if e.target != mi:
                    Q[row, t_pos[e.target]] += rate
            else:
                for tm, p in absorption[e.target].items():
                    if tm != mi:
                        Q[row, t_pos[tm]] += rate * p
    np.fill_diagonal(Q, 0.0)
    np.fill_diagonal(Q, -Q.sum(axis=1))

    markings = [graph.markings[i] for i in tangible]
    ctmc = CTMC(Q, labels=markings)

    init = np.zeros(n)
    if graph.tangible[graph.initial_index]:
        init[t_pos[graph.initial_index]] = 1.0
    else:
        for tm, p in absorption[graph.initial_index].items():
            init[t_pos[tm]] += p

    return GSPNSolution(
        ctmc=ctmc,
        tangible_markings=markings,
        initial_distribution=init,
        graph=graph,
    )
