"""Event-driven token-game simulation of EDSPNs.

Semantics implemented (the TimeNET-compatible subset the paper relies on):

1. **Vanishing markings** — whenever any immediate transition is enabled the
   marking is vanishing: immediates fire in zero time until none is enabled.
   Within an instant, only the *highest-priority* enabled immediates compete;
   ties are resolved by weighted random choice.  A configurable chain limit
   guards against zero-time livelocks.
2. **Timed races** — every enabled timed transition holds a timer; the
   earliest timer fires.  Timer lifecycles follow the transition's
   :class:`~repro.petri.transitions.MemoryPolicy`:

   - a transition that remains enabled across someone else's firing keeps
     its timer (clock continuity),
   - a transition disabled before firing loses (RESAMPLE), freezes (AGE), or
     re-uses (IDENTICAL) its timer,
   - a transition that fires always draws a fresh timer for its next
     enabling cycle.

   Enabledness is compared *between tangible markings*: zero-time excursions
   through vanishing markings do not reset timers (TimeNET behaviour).
3. **Statistics** — time-averaged token counts per place (the paper's
   "average number of tokens … determines the steady state probability"),
   transition firing counts/throughputs, and arbitrary user-defined
   marking *watchers* (e.g. "CPU_ON and not Active" for the idle
   percentage), all supporting warm-up truncation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.des.engine import SimulationError, Simulator
from repro.des.events import Event
from repro.des.random_streams import StreamManager
from repro.petri.marking import Marking
from repro.petri.net import CompiledNet, PetriNet
from repro.petri.transitions import MemoryPolicy, TimedTransition

__all__ = ["PetriNetSimulator", "SimulationResult"]

Watcher = Callable[[np.ndarray], float]


@dataclass
class SimulationResult:
    """Outcome of one simulation run.

    Token and watcher averages are time-weighted means over
    ``[warmup, horizon]``.
    """

    net_name: str
    horizon: float
    warmup: float
    observed_time: float
    place_names: List[str]
    mean_tokens_vector: np.ndarray
    firing_counts: Dict[str, int]
    watcher_means: Dict[str, float] = field(default_factory=dict)
    final_marking: Optional[Marking] = None
    events_executed: int = 0
    immediate_firings: int = 0

    def mean_tokens(self, place: str) -> float:
        """Time-averaged token count of *place* — the paper's steady-state
        probability estimator when the place is 1-bounded."""
        try:
            i = self.place_names.index(place)
        except ValueError:
            raise KeyError(f"unknown place {place!r}") from None
        return float(self.mean_tokens_vector[i])

    def mean_tokens_dict(self) -> Dict[str, float]:
        return {
            name: float(v)
            for name, v in zip(self.place_names, self.mean_tokens_vector)
        }

    def throughput(self, transition: str) -> float:
        """Firings per unit time over the observed window."""
        if transition not in self.firing_counts:
            raise KeyError(f"unknown transition {transition!r}")
        if self.observed_time <= 0.0:
            return 0.0
        return self.firing_counts[transition] / self.observed_time

    def watcher(self, name: str) -> float:
        return self.watcher_means[name]


class PetriNetSimulator:
    """Simulates a :class:`~repro.petri.net.PetriNet`.

    Parameters
    ----------
    net:
        The net to simulate (compiled lazily; the net must not be mutated
        while a simulator holds it).
    seed:
        Convenience master seed; ignored when *streams* is given.
    streams:
        Pre-built :class:`~repro.des.random_streams.StreamManager`, e.g. a
        per-replication child.
    max_immediate_chain:
        Zero-time livelock guard: maximum immediate firings at one instant.
    """

    def __init__(
        self,
        net: PetriNet,
        seed: Optional[int] = None,
        streams: Optional[StreamManager] = None,
        max_immediate_chain: int = 100_000,
    ) -> None:
        net.check()
        self.net = net
        self.compiled: CompiledNet = net.compile()
        self.streams = streams if streams is not None else StreamManager(seed)
        self.max_immediate_chain = int(max_immediate_chain)
        self._watchers: Dict[str, Watcher] = {}
        # per-transition RNG streams, resolved once
        c = self.compiled
        self._conflict_rng = self.streams.get(f"petri/{net.name}/conflicts")
        self._t_rng = [
            self.streams.get(f"petri/{net.name}/t/{t.name}")
            for t in c.transitions
        ]
        # immediates sorted by descending priority for the cascade scan
        self._immediates_by_priority = sorted(
            c.immediate_indices,
            key=lambda i: -c.transitions[i].priority,  # type: ignore[attr-defined]
        )

    # ------------------------------------------------------------------ #
    # configuration
    # ------------------------------------------------------------------ #
    def watch(self, name: str, fn: Watcher) -> "PetriNetSimulator":
        """Register a marking watcher.

        *fn* receives the raw token vector and returns a float; its
        time-weighted mean over the observation window is reported in
        :attr:`SimulationResult.watcher_means`.
        """
        self._watchers[name] = fn
        return self

    def watch_place_positive(self, name: str, place: str) -> "PetriNetSimulator":
        """Watch the indicator ``tokens(place) >= 1``."""
        idx = self.compiled.place_names.index(place)
        return self.watch(name, lambda m, _i=idx: 1.0 if m[_i] >= 1 else 0.0)

    # ------------------------------------------------------------------ #
    # main entry point
    # ------------------------------------------------------------------ #
    def run(
        self,
        horizon: float,
        warmup: float = 0.0,
        max_firings: Optional[int] = None,
    ) -> SimulationResult:
        """Simulate on ``[0, horizon]``, collecting statistics after *warmup*."""
        if horizon <= 0.0 or not math.isfinite(horizon):
            raise ValueError(f"horizon must be finite and > 0, got {horizon}")
        if not (0.0 <= warmup < horizon):
            raise ValueError(f"need 0 <= warmup < horizon, got warmup={warmup}")

        c = self.compiled
        n_places = len(c.place_names)
        n_trans = len(c.transitions)

        engine = Simulator()
        marking = c.initial_marking.copy()
        pending: Dict[int, Event] = {}
        age_remaining: Dict[int, float] = {}
        identical_sample: Dict[int, float] = {}
        firing_counts = np.zeros(n_trans, dtype=np.int64)
        immediate_firings = 0

        # --- statistics state ------------------------------------------ #
        area = np.zeros(n_places)
        watcher_names = list(self._watchers)
        watcher_fns = [self._watchers[w] for w in watcher_names]
        watcher_area = np.zeros(len(watcher_fns))
        watcher_values = np.zeros(len(watcher_fns))
        last_time = 0.0
        stats_started = warmup == 0.0

        def recompute_watchers() -> None:
            for i, fn in enumerate(watcher_fns):
                watcher_values[i] = fn(marking)

        def accumulate(now: float) -> None:
            nonlocal last_time
            dt = now - last_time
            if dt > 0.0:
                area[:] += marking * dt
                if watcher_fns:
                    watcher_area[:] += watcher_values * dt
            last_time = now

        # --- vanishing-marking cascade ---------------------------------- #
        transitions = c.transitions
        imm_sorted = self._immediates_by_priority

        def stabilize() -> None:
            nonlocal immediate_firings
            chain = 0
            while True:
                best_priority: Optional[int] = None
                conflict: List[int] = []
                for ti in imm_sorted:
                    prio = transitions[ti].priority  # type: ignore[attr-defined]
                    if best_priority is not None and prio < best_priority:
                        break
                    if c.enabled(ti, marking):
                        best_priority = prio
                        conflict.append(ti)
                if best_priority is None:
                    return
                if len(conflict) == 1:
                    chosen = conflict[0]
                else:
                    weights = np.array(
                        [transitions[i].weight for i in conflict]  # type: ignore[attr-defined]
                    )
                    chosen = conflict[
                        self._conflict_rng.choice(len(conflict), p=weights / weights.sum())
                    ]
                c.fire(chosen, marking)
                firing_counts[chosen] += 1
                immediate_firings += 1
                chain += 1
                if chain > self.max_immediate_chain:
                    raise SimulationError(
                        f"immediate-transition livelock: more than "
                        f"{self.max_immediate_chain} zero-time firings at "
                        f"t={engine.now:.6g} in net {self.net.name!r}"
                    )

        # --- timed-transition scheduling --------------------------------- #
        def sample_delay(ti: int) -> float:
            t = transitions[ti]
            assert isinstance(t, TimedTransition)
            policy = t.memory_policy
            if policy is MemoryPolicy.AGE and ti in age_remaining:
                return age_remaining.pop(ti)
            if policy is MemoryPolicy.IDENTICAL:
                if ti in identical_sample:
                    return identical_sample[ti]
                delay = float(t.distribution.sample(self._t_rng[ti]))
                identical_sample[ti] = delay
                return delay
            return float(t.distribution.sample(self._t_rng[ti]))

        def update_timed_schedule(fired: Optional[int]) -> None:
            now = engine.now
            for ti in c.timed_indices:
                enabled = c.enabled(ti, marking)
                ev = pending.get(ti)
                if ev is not None:
                    if enabled and ti != fired:
                        continue  # clock keeps running
                    # disabled (or it just fired elsewhere): withdraw timer
                    engine.cancel(ev)
                    del pending[ti]
                    if not enabled:
                        t = transitions[ti]
                        assert isinstance(t, TimedTransition)
                        if t.memory_policy is MemoryPolicy.AGE:
                            age_remaining[ti] = max(ev.time - now, 0.0)
                        # IDENTICAL keeps identical_sample as is; RESAMPLE drops
                        continue
                if enabled and ti not in pending:
                    delay = sample_delay(ti)
                    pending[ti] = engine.schedule(
                        delay, _FireAction(self, ti), priority=1, tag=transitions[ti].name
                    )

        # --- firing a timed transition ----------------------------------- #
        def fire_timed(ti: int) -> None:
            accumulate(engine.now)
            pending.pop(ti, None)
            identical_sample.pop(ti, None)  # fired: sample consumed
            c.fire(ti, marking)
            firing_counts[ti] += 1
            stabilize()
            recompute_watchers()
            update_timed_schedule(fired=ti)
            if max_firings is not None and int(firing_counts.sum()) >= max_firings:
                engine.stop()

        self._fire_timed = fire_timed  # used by _FireAction

        # --- run ---------------------------------------------------------- #
        stabilize()
        recompute_watchers()
        update_timed_schedule(fired=None)

        firing_offset = np.zeros(n_trans, dtype=np.int64)
        if warmup > 0.0:
            engine.run_until(warmup)
            accumulate(warmup)
            area[:] = 0.0
            watcher_area[:] = 0.0
            firing_offset[:] = firing_counts
            stats_started = True
        engine.run_until(horizon)
        accumulate(engine.now)
        # close the window exactly at the horizon even if the queue drained
        if last_time < horizon:
            accumulate(horizon)

        observed = horizon - warmup
        mean_tokens = area / observed if observed > 0 else area * 0.0
        watcher_means = {
            name: float(watcher_area[i] / observed)
            for i, name in enumerate(watcher_names)
        }
        assert stats_started
        return SimulationResult(
            net_name=self.net.name,
            horizon=horizon,
            warmup=warmup,
            observed_time=observed,
            place_names=list(c.place_names),
            mean_tokens_vector=mean_tokens,
            firing_counts={
                t.name: int(firing_counts[i] - firing_offset[i])
                for i, t in enumerate(transitions)
            },
            watcher_means=watcher_means,
            final_marking=Marking(marking, c.place_names),
            events_executed=engine.events_executed,
            immediate_firings=immediate_firings,
        )

    # ------------------------------------------------------------------ #
    def run_batches(
        self,
        batch_length: float,
        n_batches: int,
        warmup: float = 0.0,
    ) -> List[SimulationResult]:
        """Run ``n_batches`` *independent* runs of length *batch_length*.

        Independent replications (not batch means over one trajectory):
        each run draws from the same underlying streams sequentially, so the
        batches are independent but the whole sequence is reproducible.
        """
        if n_batches < 1:
            raise ValueError("n_batches must be >= 1")
        return [
            self.run(horizon=batch_length + warmup, warmup=warmup)
            for _ in range(n_batches)
        ]


class _FireAction:
    """Picklable, allocation-light callable bound to one transition firing."""

    __slots__ = ("sim", "ti")

    def __init__(self, sim: PetriNetSimulator, ti: int) -> None:
        self.sim = sim
        self.ti = ti

    def __call__(self) -> None:
        self.sim._fire_timed(self.ti)
