"""Net structure: places, transitions, arcs, and a compiled form.

:class:`PetriNet` is the user-facing builder.  Internally it *compiles* the
structure into index-based arrays (:class:`CompiledNet`) once, so the hot
token-game loop never touches dictionaries or strings.  The compiled form is
cached and invalidated on any structural mutation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.des.distributions import Distribution
from repro.petri.arcs import Arc, ArcKind
from repro.petri.marking import Marking
from repro.petri.transitions import (
    ImmediateTransition,
    MemoryPolicy,
    TimedTransition,
    Transition,
)

__all__ = ["Place", "PetriNet", "NetStructureError", "CompiledNet"]


class NetStructureError(ValueError):
    """Raised when a net is malformed (unknown node, duplicate name, …)."""


@dataclass(frozen=True)
class Place:
    """A token container.

    Attributes
    ----------
    name:
        Unique place name.
    initial:
        Tokens in the initial marking.
    capacity:
        Optional bound with *capacity semantics*: any transition whose
        firing would push the place above the capacity is disabled (a
        standard way to keep state spaces finite).  Firing an explicitly
        disabled transition past the bound raises.
    """

    name: str
    initial: int = 0
    capacity: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise NetStructureError("place name must be non-empty")
        if self.initial < 0:
            raise NetStructureError(f"initial tokens must be >= 0 on {self.name!r}")
        if self.capacity is not None and self.capacity < max(self.initial, 1):
            raise NetStructureError(
                f"capacity on {self.name!r} must be >= max(initial, 1)"
            )


@dataclass
class CompiledNet:
    """Index-based view of a net, consumed by the simulator and analysis.

    All arrays are aligned: places by place index, transitions by transition
    index.  Arc lists are tuples of ``(place_index, multiplicity)``.
    """

    place_names: List[str]
    initial_marking: np.ndarray
    capacities: np.ndarray  # -1 means unbounded
    transitions: List[Transition]
    inputs: List[Tuple[Tuple[int, int], ...]]
    outputs: List[Tuple[Tuple[int, int], ...]]
    inhibitors: List[Tuple[Tuple[int, int], ...]]
    immediate_indices: List[int]
    timed_indices: List[int]
    # (place, net token delta) pairs that must satisfy the place capacity
    capacity_checks: List[Tuple[Tuple[int, int], ...]] = field(
        default_factory=list
    )
    # transitions whose enabling may change when a given place changes
    affected_by_place: List[List[int]] = field(default_factory=list)
    guarded_indices: List[int] = field(default_factory=list)

    def enabled(self, t_index: int, marking: np.ndarray) -> bool:
        """Enabling test for one transition under *marking*.

        Uses *capacity semantics*: a transition whose firing would push a
        bounded place above its capacity is disabled, not an error.
        """
        for p, mult in self.inputs[t_index]:
            if marking[p] < mult:
                return False
        for p, mult in self.inhibitors[t_index]:
            if marking[p] >= mult:
                return False
        for p, delta in self.capacity_checks[t_index]:
            if marking[p] + delta > self.capacities[p]:
                return False
        guard = self.transitions[t_index].guard
        if guard is not None and not guard(marking):
            return False
        return True

    def fire(self, t_index: int, marking: np.ndarray) -> None:
        """Apply the firing of transition *t_index* to *marking* in place."""
        for p, mult in self.inputs[t_index]:
            marking[p] -= mult
        for p, mult in self.outputs[t_index]:
            marking[p] += mult
            cap = self.capacities[p]
            if cap >= 0 and marking[p] > cap:
                raise NetStructureError(
                    f"place {self.place_names[p]!r} exceeded capacity {cap} "
                    f"after firing {self.transitions[t_index].name!r}"
                )

    def successor(self, t_index: int, marking: np.ndarray) -> np.ndarray:
        """Marking after firing *t_index* (copy; for reachability search)."""
        out = marking.copy()
        self.fire(t_index, out)
        return out


class PetriNet:
    """Mutable EDSPN builder.

    See the package docstring of :mod:`repro.petri` for a usage example.
    All ``add_*`` methods return ``self`` for chaining.
    """

    def __init__(self, name: str = "net") -> None:
        self.name = name
        self._places: Dict[str, Place] = {}
        self._transitions: Dict[str, Transition] = {}
        self._arcs: List[Arc] = []
        self._compiled: Optional[CompiledNet] = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_place(
        self, name: str, initial: int = 0, capacity: Optional[int] = None
    ) -> "PetriNet":
        """Add a place; raises on duplicate names."""
        if name in self._places or name in self._transitions:
            raise NetStructureError(f"duplicate node name {name!r}")
        self._places[name] = Place(name, initial, capacity)
        self._compiled = None
        return self

    def add_transition(self, transition: Transition) -> "PetriNet":
        """Add a pre-built transition object."""
        name = transition.name
        if name in self._transitions or name in self._places:
            raise NetStructureError(f"duplicate node name {name!r}")
        self._transitions[name] = transition
        self._compiled = None
        return self

    def add_immediate_transition(
        self,
        name: str,
        priority: int = 1,
        weight: float = 1.0,
        guard: Optional[Callable] = None,
    ) -> "PetriNet":
        """Convenience wrapper for :class:`ImmediateTransition`."""
        return self.add_transition(
            ImmediateTransition(name, priority=priority, weight=weight, guard=guard)
        )

    def add_timed_transition(
        self,
        name: str,
        distribution: Distribution,
        memory_policy: MemoryPolicy = MemoryPolicy.RESAMPLE,
        guard: Optional[Callable] = None,
    ) -> "PetriNet":
        """Convenience wrapper for :class:`TimedTransition`."""
        return self.add_transition(
            TimedTransition(name, distribution, memory_policy, guard)
        )

    def add_input_arc(
        self, place: str, transition: str, multiplicity: int = 1
    ) -> "PetriNet":
        """Arc place → transition (consumed on firing)."""
        self._check_nodes(place, transition)
        self._arcs.append(Arc(place, transition, ArcKind.INPUT, multiplicity))
        self._compiled = None
        return self

    def add_output_arc(
        self, transition: str, place: str, multiplicity: int = 1
    ) -> "PetriNet":
        """Arc transition → place (produced on firing)."""
        self._check_nodes(place, transition)
        self._arcs.append(Arc(place, transition, ArcKind.OUTPUT, multiplicity))
        self._compiled = None
        return self

    def add_inhibitor_arc(
        self, place: str, transition: str, multiplicity: int = 1
    ) -> "PetriNet":
        """Inhibitor arc: transition enabled only while tokens < multiplicity."""
        self._check_nodes(place, transition)
        self._arcs.append(Arc(place, transition, ArcKind.INHIBITOR, multiplicity))
        self._compiled = None
        return self

    def _check_nodes(self, place: str, transition: str) -> None:
        if place not in self._places:
            raise NetStructureError(f"unknown place {place!r}")
        if transition not in self._transitions:
            raise NetStructureError(f"unknown transition {transition!r}")

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def places(self) -> List[Place]:
        return list(self._places.values())

    @property
    def place_names(self) -> List[str]:
        return list(self._places)

    @property
    def transitions(self) -> List[Transition]:
        return list(self._transitions.values())

    @property
    def transition_names(self) -> List[str]:
        return list(self._transitions)

    @property
    def arcs(self) -> List[Arc]:
        return list(self._arcs)

    def place(self, name: str) -> Place:
        try:
            return self._places[name]
        except KeyError:
            raise NetStructureError(f"unknown place {name!r}") from None

    def transition(self, name: str) -> Transition:
        try:
            return self._transitions[name]
        except KeyError:
            raise NetStructureError(f"unknown transition {name!r}") from None

    def initial_marking(self) -> Marking:
        return Marking(
            [p.initial for p in self._places.values()], self.place_names
        )

    # ------------------------------------------------------------------ #
    # validation & compilation
    # ------------------------------------------------------------------ #
    def validate(self) -> List[str]:
        """Return a list of structural issues (empty = clean).

        Checks: empty net, transitions without input arcs (token sources —
        legal but usually a modelling slip unless paired with an inhibitor
        or guard), transitions with no output arcs (token sinks), immediate
        transitions in zero-time cycles cannot be detected statically but
        self-loop immediates with no net marking change are flagged.
        """
        issues: List[str] = []
        if not self._places:
            issues.append("net has no places")
        if not self._transitions:
            issues.append("net has no transitions")
        by_transition: Dict[str, Dict[ArcKind, List[Arc]]] = {
            t: {k: [] for k in ArcKind} for t in self._transitions
        }
        for arc in self._arcs:
            by_transition[arc.transition][arc.kind].append(arc)
        for tname, groups in by_transition.items():
            t = self._transitions[tname]
            if not groups[ArcKind.INPUT] and not groups[ArcKind.INHIBITOR] \
                    and t.guard is None:
                issues.append(
                    f"transition {tname!r} has no input/inhibitor arcs or guard "
                    "(always enabled: it will fire forever)"
                )
            if t.is_immediate and not groups[ArcKind.INPUT]:
                issues.append(
                    f"immediate transition {tname!r} has no input arcs "
                    "(would fire in an infinite zero-time loop)"
                )
            inputs = {(a.place, a.multiplicity) for a in groups[ArcKind.INPUT]}
            outputs = {(a.place, a.multiplicity) for a in groups[ArcKind.OUTPUT]}
            if t.is_immediate and inputs and inputs == outputs:
                issues.append(
                    f"immediate transition {tname!r} does not change the marking "
                    "(zero-time livelock)"
                )
        return issues

    def check(self) -> None:
        """Raise :class:`NetStructureError` when :meth:`validate` finds issues."""
        issues = self.validate()
        if issues:
            raise NetStructureError("; ".join(issues))

    def compile(self) -> CompiledNet:
        """Build (and cache) the index-based view used by simulator/analysis."""
        if self._compiled is not None:
            return self._compiled
        place_names = self.place_names
        p_index = {name: i for i, name in enumerate(place_names)}
        transitions = self.transitions
        t_index = {t.name: i for i, t in enumerate(transitions)}

        n_t = len(transitions)
        inputs: List[List[Tuple[int, int]]] = [[] for _ in range(n_t)]
        outputs: List[List[Tuple[int, int]]] = [[] for _ in range(n_t)]
        inhibitors: List[List[Tuple[int, int]]] = [[] for _ in range(n_t)]
        for arc in self._arcs:
            ti = t_index[arc.transition]
            pi = p_index[arc.place]
            if arc.kind is ArcKind.INPUT:
                inputs[ti].append((pi, arc.multiplicity))
            elif arc.kind is ArcKind.OUTPUT:
                outputs[ti].append((pi, arc.multiplicity))
            else:
                inhibitors[ti].append((pi, arc.multiplicity))

        capacities = np.array(
            [
                -1 if p.capacity is None else p.capacity
                for p in self._places.values()
            ],
            dtype=np.int64,
        )
        capacity_checks: List[List[Tuple[int, int]]] = []
        for ti in range(n_t):
            delta: Dict[int, int] = {}
            for p, mult in inputs[ti]:
                delta[p] = delta.get(p, 0) - mult
            for p, mult in outputs[ti]:
                delta[p] = delta.get(p, 0) + mult
            capacity_checks.append(
                [
                    (p, d)
                    for p, d in delta.items()
                    if d > 0 and capacities[p] >= 0
                ]
            )

        affected: List[List[int]] = [[] for _ in place_names]
        for ti in range(n_t):
            sensitive = (
                {p for p, _ in inputs[ti]}
                | {p for p, _ in inhibitors[ti]}
                | {p for p, _ in capacity_checks[ti]}
            )
            for p in sensitive:
                affected[p].append(ti)

        compiled = CompiledNet(
            place_names=place_names,
            initial_marking=np.array(
                [p.initial for p in self._places.values()], dtype=np.int64
            ),
            capacities=capacities,
            transitions=transitions,
            inputs=[tuple(x) for x in inputs],
            outputs=[tuple(x) for x in outputs],
            inhibitors=[tuple(x) for x in inhibitors],
            capacity_checks=[tuple(x) for x in capacity_checks],
            immediate_indices=[
                i for i, t in enumerate(transitions) if t.is_immediate
            ],
            timed_indices=[
                i for i, t in enumerate(transitions) if not t.is_immediate
            ],
            affected_by_place=affected,
            guarded_indices=[
                i for i, t in enumerate(transitions) if t.guard is not None
            ],
        )
        self._compiled = compiled
        return compiled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PetriNet({self.name!r}, places={len(self._places)}, "
            f"transitions={len(self._transitions)}, arcs={len(self._arcs)})"
        )
