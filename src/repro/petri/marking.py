"""Markings: token-count vectors over the places of a net.

A marking is stored as a NumPy ``int64`` vector indexed by place index.
:class:`Marking` is a thin wrapper adding name-based access, hashability
(for reachability-set membership) and the arithmetic the token game needs.
The simulator works on the raw array for speed and only materialises
:class:`Marking` objects at API boundaries.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Sequence, Tuple

import numpy as np

__all__ = ["Marking"]


class Marking:
    """An immutable snapshot of token counts.

    Parameters
    ----------
    counts:
        Token count per place index.
    place_names:
        Names aligned with *counts* (shared, not copied).
    """

    __slots__ = ("_counts", "_names", "_index", "_hash")

    def __init__(
        self,
        counts: Sequence[int],
        place_names: Sequence[str],
        _index: Dict[str, int] | None = None,
    ) -> None:
        arr = np.asarray(counts, dtype=np.int64).copy()
        if arr.ndim != 1:
            raise ValueError("marking must be a 1-D vector")
        if len(place_names) != arr.size:
            raise ValueError(
                f"{len(place_names)} names for {arr.size} counts"
            )
        if np.any(arr < 0):
            raise ValueError("token counts must be >= 0")
        arr.setflags(write=False)
        self._counts = arr
        self._names = tuple(place_names)
        self._index = _index if _index is not None else {
            name: i for i, name in enumerate(self._names)
        }
        self._hash = hash((self._names, arr.tobytes()))

    # ------------------------------------------------------------------ #
    @property
    def counts(self) -> np.ndarray:
        """Read-only token vector."""
        return self._counts

    @property
    def place_names(self) -> Tuple[str, ...]:
        return self._names

    def __getitem__(self, place: str | int) -> int:
        if isinstance(place, str):
            return int(self._counts[self._index[place]])
        return int(self._counts[place])

    def get(self, place: str, default: int = 0) -> int:
        i = self._index.get(place)
        return default if i is None else int(self._counts[i])

    def total_tokens(self) -> int:
        return int(self._counts.sum())

    def as_dict(self, skip_zero: bool = False) -> Dict[str, int]:
        """Token counts keyed by place name."""
        return {
            name: int(c)
            for name, c in zip(self._names, self._counts)
            if not (skip_zero and c == 0)
        }

    def __iter__(self) -> Iterator[Tuple[str, int]]:
        return iter(self.as_dict().items())

    def __len__(self) -> int:
        return self._counts.size

    # ------------------------------------------------------------------ #
    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Marking):
            return NotImplemented
        return self._names == other._names and bool(
            np.array_equal(self._counts, other._counts)
        )

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}={int(c)}"
            for name, c in zip(self._names, self._counts)
            if c != 0
        )
        return f"Marking({inner or 'empty'})"

    # ------------------------------------------------------------------ #
    @classmethod
    def from_dict(
        cls, tokens: Mapping[str, int], place_names: Sequence[str]
    ) -> "Marking":
        """Build from a (possibly partial) ``{place: tokens}`` mapping."""
        index = {name: i for i, name in enumerate(place_names)}
        counts = np.zeros(len(place_names), dtype=np.int64)
        for name, c in tokens.items():
            if name not in index:
                raise KeyError(f"unknown place {name!r}")
            counts[index[name]] = c
        return cls(counts, place_names, _index=index)
