"""Transitions: immediate and timed, with memory policies.

The paper's Table 1 uses exactly this taxonomy:

=============  ===================  =====================================
Transition     Firing distribution  Here
=============  ===================  =====================================
``AR``         exponential          ``TimedTransition(Exponential(λ))``
``T1``/``T2``  instantaneous        ``ImmediateTransition(priority=…)``
``SR``         exponential          ``TimedTransition(Exponential(μ))``
``PDT``        deterministic        ``TimedTransition(Deterministic(T))``
``PUT``        deterministic        ``TimedTransition(Deterministic(D))``
=============  ===================  =====================================

Memory policies
---------------
When a timed transition is disabled by another firing before its own timer
expires, three semantics are standard in the DSPN literature:

- :attr:`MemoryPolicy.RESAMPLE` (preemptive-repeat-different, **default**):
  the timer is discarded; a fresh delay is drawn on the next enabling.  For
  a deterministic transition this means "the full delay must elapse with
  the transition *continuously* enabled" — exactly the paper's Power Down
  Threshold semantics (the idle clock restarts whenever a job arrives).
- :attr:`MemoryPolicy.AGE` (preemptive-resume): the remaining time is
  frozen while disabled and resumes on re-enabling.
- :attr:`MemoryPolicy.IDENTICAL` (preemptive-repeat-identical): the timer
  restarts from zero but re-uses the originally sampled value.

A transition that *stays* enabled across someone else's firing keeps its
timer running untouched under every policy, and a transition that fires
always draws a fresh delay for its next enabling cycle.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from repro.des.distributions import Distribution, Exponential

__all__ = ["MemoryPolicy", "Transition", "ImmediateTransition", "TimedTransition"]

Guard = Callable[["object"], bool]  # receives the raw marking vector


class MemoryPolicy(enum.Enum):
    """What happens to a running timer when its transition is disabled."""

    RESAMPLE = "resample"  # preemptive repeat different (PRD)
    AGE = "age"  # preemptive resume (PRS)
    IDENTICAL = "identical"  # preemptive repeat identical (PRI)


class Transition:
    """Common base: name plus an optional marking guard.

    Guards receive the raw NumPy token vector (indexed by place index) and
    must be side-effect free.  A transition with a guard is re-evaluated on
    every marking change, so guards should be cheap.
    """

    __slots__ = ("name", "guard")

    def __init__(self, name: str, guard: Optional[Guard] = None) -> None:
        if not name:
            raise ValueError("transition name must be non-empty")
        self.name = name
        self.guard = guard

    @property
    def is_immediate(self) -> bool:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


class ImmediateTransition(Transition):
    """Fires in zero time as soon as enabled.

    Parameters
    ----------
    priority:
        Higher fires first; among enabled immediates only the maximal
        priority group competes.  The paper's Table 1 assigns T1 the highest
        priority (4) so a fresh arrival is dispatched before anything else.
    weight:
        Relative probability within an equal-priority conflict set.
    """

    __slots__ = ("priority", "weight")

    def __init__(
        self,
        name: str,
        priority: int = 1,
        weight: float = 1.0,
        guard: Optional[Guard] = None,
    ) -> None:
        super().__init__(name, guard)
        if weight <= 0.0:
            raise ValueError(f"weight must be > 0, got {weight}")
        self.priority = int(priority)
        self.weight = float(weight)

    @property
    def is_immediate(self) -> bool:
        return True


class TimedTransition(Transition):
    """Fires after a random (or constant) enabling delay.

    Parameters
    ----------
    distribution:
        Delay distribution.  ``Exponential`` gives a classic SPN transition;
        ``Deterministic`` the DSPN transitions of the paper; any other
        :class:`~repro.des.distributions.Distribution` is allowed (that is
        the "Extended" in EDSPN).
    memory_policy:
        See :class:`MemoryPolicy`.  Irrelevant for exponential transitions
        (memorylessness makes all three identical in law).
    """

    __slots__ = ("distribution", "memory_policy")

    def __init__(
        self,
        name: str,
        distribution: Distribution,
        memory_policy: MemoryPolicy = MemoryPolicy.RESAMPLE,
        guard: Optional[Guard] = None,
    ) -> None:
        super().__init__(name, guard)
        if not isinstance(distribution, Distribution):
            raise TypeError(
                f"distribution must be a Distribution, got {distribution!r}"
            )
        if distribution.is_immediate():
            raise ValueError(
                f"timed transition {name!r} has a zero delay; "
                "use ImmediateTransition instead"
            )
        if not isinstance(memory_policy, MemoryPolicy):
            raise TypeError(f"memory_policy must be a MemoryPolicy")
        self.distribution = distribution
        self.memory_policy = memory_policy

    @property
    def is_immediate(self) -> bool:
        return False

    @property
    def is_exponential(self) -> bool:
        return isinstance(self.distribution, Exponential)

    @property
    def rate(self) -> float:
        """Firing rate, defined only for exponential transitions."""
        if not self.is_exponential:
            raise AttributeError(
                f"transition {self.name!r} is not exponential"
            )
        return self.distribution.rate  # type: ignore[attr-defined]
