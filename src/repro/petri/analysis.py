"""Reachability analysis of EDSPNs.

Builds the reachability graph by breadth-first exploration from the initial
marking, classifying markings as *vanishing* (at least one immediate
transition enabled — left in zero time) or *tangible* (only timed
transitions, or dead).  The graph supports:

- structural diagnostics: per-place token bounds, dead transitions, dead
  (absorbing) markings, boundedness up to an exploration budget;
- the tangible-to-tangible stochastic reduction used by
  :mod:`repro.petri.ctmc_export` to turn exponential-only nets into CTMCs.

Exploration is exact for bounded nets; for unbounded nets it stops at
``max_markings`` and reports ``complete=False`` (this library does not
implement coverability trees — the nets in the reproduction are 1-bounded
by construction).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.petri.marking import Marking
from repro.petri.net import NetStructureError, PetriNet
from repro.petri.transitions import ImmediateTransition

__all__ = ["ReachabilityOptions", "Edge", "ReachabilityGraph", "explore_reachability"]


@dataclass(frozen=True)
class ReachabilityOptions:
    """Exploration limits."""

    max_markings: int = 100_000


@dataclass(frozen=True)
class Edge:
    """One reachability edge.

    ``probability`` is set for edges out of vanishing markings (normalised
    immediate weights within the maximal priority class); it is ``None``
    for timed edges out of tangible markings.
    """

    source: int
    target: int
    transition_index: int
    probability: Optional[float] = None


@dataclass
class ReachabilityGraph:
    """The explored state space."""

    net: PetriNet
    markings: List[Marking]
    tangible: List[bool]
    edges_out: List[List[Edge]]
    initial_index: int
    complete: bool
    transition_names: List[str] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    @property
    def n_markings(self) -> int:
        return len(self.markings)

    def tangible_indices(self) -> List[int]:
        return [i for i, t in enumerate(self.tangible) if t]

    def vanishing_indices(self) -> List[int]:
        return [i for i, t in enumerate(self.tangible) if not t]

    def place_bound(self, place: str) -> int:
        """Maximum token count observed in *place* across all markings."""
        return max(m[place] for m in self.markings)

    def is_k_bounded(self, k: int) -> bool:
        """True when every place holds <= k tokens in every explored marking
        (meaningful only when ``complete``)."""
        return all(
            int(m.counts.max(initial=0)) <= k for m in self.markings
        )

    def dead_markings(self) -> List[int]:
        """Indices of markings with no enabled transitions (deadlocks)."""
        return [i for i, es in enumerate(self.edges_out) if not es]

    def dead_transitions(self) -> List[str]:
        """Transitions never enabled anywhere in the explored space."""
        fired = {e.transition_index for es in self.edges_out for e in es}
        return [
            name
            for i, name in enumerate(self.transition_names)
            if i not in fired
        ]

    def find(self, marking: Marking) -> Optional[int]:
        """Index of *marking* in the graph, or None."""
        try:
            return self.markings.index(marking)
        except ValueError:
            return None

    # ------------------------------------------------------------------ #
    def vanishing_absorption(self) -> Dict[int, Dict[int, float]]:
        """For every vanishing marking, its distribution over the tangible
        markings ultimately reached through zero-time firings.

        Solves ``B = (I - V)^{-1} R`` over the vanishing block.  Raises
        :class:`NetStructureError` when vanishing markings form a zero-time
        trap (livelock) — the system would then be singular.
        """
        vanishing = self.vanishing_indices()
        if not vanishing:
            return {}
        v_pos = {m: i for i, m in enumerate(vanishing)}
        tangible = self.tangible_indices()
        t_pos = {m: i for i, m in enumerate(tangible)}
        nv, nt = len(vanishing), len(tangible)
        V = np.zeros((nv, nv))
        R = np.zeros((nv, nt))
        for vi, m in enumerate(vanishing):
            for e in self.edges_out[m]:
                p = e.probability if e.probability is not None else 0.0
                if self.tangible[e.target]:
                    R[vi, t_pos[e.target]] += p
                else:
                    V[vi, v_pos[e.target]] += p
        try:
            B = np.linalg.solve(np.eye(nv) - V, R)
        except np.linalg.LinAlgError as exc:
            raise NetStructureError(
                f"vanishing markings form a zero-time livelock: {exc}"
            ) from exc
        if np.any(B < -1e-9):
            raise NetStructureError("negative absorption probability")
        result: Dict[int, Dict[int, float]] = {}
        for vi, m in enumerate(vanishing):
            row = B[vi]
            total = row.sum()
            if not np.isclose(total, 1.0, atol=1e-8):
                raise NetStructureError(
                    f"vanishing marking {self.markings[m]!r} leaks probability "
                    f"(sum={total:.6g}); likely a zero-time trap"
                )
            result[m] = {
                tangible[tj]: float(row[tj]) for tj in range(nt) if row[tj] > 0.0
            }
        return result


def explore_reachability(
    net: PetriNet, options: ReachabilityOptions = ReachabilityOptions()
) -> ReachabilityGraph:
    """Breadth-first reachability exploration with vanishing classification."""
    compiled = net.compile()
    place_names = compiled.place_names
    transitions = compiled.transitions

    # immediates grouped by descending priority, mirroring the simulator
    imm_sorted = sorted(
        compiled.immediate_indices,
        key=lambda i: -transitions[i].priority,  # type: ignore[attr-defined]
    )

    initial = compiled.initial_marking.copy()
    init_marking = Marking(initial, place_names)
    index: Dict[Marking, int] = {init_marking: 0}
    markings: List[Marking] = [init_marking]
    tangible: List[bool] = []
    edges_out: List[List[Edge]] = []
    queue: deque[int] = deque([0])
    complete = True

    while queue:
        mi = queue.popleft()
        m_vec = markings[mi].counts.copy()

        # --- vanishing? find the maximal-priority enabled immediate set --- #
        conflict: List[int] = []
        best_priority: Optional[int] = None
        for ti in imm_sorted:
            prio = transitions[ti].priority  # type: ignore[attr-defined]
            if best_priority is not None and prio < best_priority:
                break
            if compiled.enabled(ti, m_vec):
                best_priority = prio
                conflict.append(ti)

        edges: List[Edge] = []
        if conflict:
            tangible.append(False)
            weights = np.array(
                [transitions[i].weight for i in conflict]  # type: ignore[attr-defined]
            )
            probs = weights / weights.sum()
            for ti, p in zip(conflict, probs):
                succ = compiled.successor(ti, m_vec)
                target = _intern(succ, place_names, index, markings, queue)
                edges.append(Edge(mi, target, ti, probability=float(p)))
        else:
            tangible.append(True)
            for ti in compiled.timed_indices:
                if compiled.enabled(ti, m_vec):
                    succ = compiled.successor(ti, m_vec)
                    target = _intern(succ, place_names, index, markings, queue)
                    edges.append(Edge(mi, target, ti))
        edges_out.append(edges)

        if len(markings) > options.max_markings:
            complete = False
            # stop expanding; classify remaining queued markings lazily
            while queue:
                qi = queue.popleft()
                while len(tangible) <= qi:
                    tangible.append(True)
                    edges_out.append([])
            break

    # pad classification arrays if exploration stopped early
    while len(tangible) < len(markings):
        tangible.append(True)
        edges_out.append([])

    return ReachabilityGraph(
        net=net,
        markings=markings,
        tangible=tangible,
        edges_out=edges_out,
        initial_index=0,
        complete=complete,
        transition_names=[t.name for t in transitions],
    )


def _intern(
    vec: np.ndarray,
    place_names: Sequence[str],
    index: Dict[Marking, int],
    markings: List[Marking],
    queue: deque,
) -> int:
    """Intern a marking vector, enqueueing it if new."""
    m = Marking(vec, place_names)
    found = index.get(m)
    if found is not None:
        return found
    new_index = len(markings)
    index[m] = new_index
    markings.append(m)
    queue.append(new_index)
    return new_index
