"""Extended Deterministic and Stochastic Petri Net (EDSPN) engine.

This package is the library's stand-in for TimeNET 4.0, the closed-source
tool the paper used to build and simulate its CPU model.  It implements the
subset of EDSPN semantics the paper relies on — and enough more to be a
generally useful modelling tool:

- **places** with initial tokens and optional capacity,
- **immediate transitions** with priorities and weights (vanishing markings
  are fired in zero time, highest priority first, weighted-random among
  equal priorities),
- **timed transitions** with exponential, deterministic, or general firing
  distributions and per-transition *memory policies* (resample / age /
  identical-repeat) governing what happens to a timer when the transition is
  disabled before firing,
- **input, output and inhibitor arcs** with integer multiplicities (the
  paper's Figure 3 uses inhibitor arcs — "the small circle at the ends of
  the arcs" — to detect an empty buffer),
- optional marking-dependent **guards**,
- an event-driven **token-game simulator** with time-averaged token
  statistics (the paper's "average number of tokens in a place" = steady
  state percentage),
- **reachability analysis** with vanishing-marking elimination, structural
  diagnostics, and **CTMC export** for exponential-only nets so small GSPNs
  can be solved exactly and used to validate the simulator.

Quick example (the paper's Figure 1 — two places, one transition)::

    from repro.petri import PetriNet
    from repro.des import Exponential

    net = PetriNet("figure1")
    net.add_place("P0", initial=1)
    net.add_place("P1")
    net.add_timed_transition("T0", Exponential(rate=1.0))
    net.add_input_arc("P0", "T0")
    net.add_output_arc("T0", "P1")

    from repro.petri import PetriNetSimulator
    sim = PetriNetSimulator(net, seed=1)
    result = sim.run(horizon=100.0)
    result.mean_tokens("P1")   # -> approaches 1.0
"""

from repro.petri.arcs import Arc, ArcKind
from repro.petri.marking import Marking
from repro.petri.net import NetStructureError, PetriNet, Place
from repro.petri.simulator import PetriNetSimulator, SimulationResult
from repro.petri.transitions import (
    ImmediateTransition,
    MemoryPolicy,
    TimedTransition,
    Transition,
)
from repro.petri.analysis import (
    ReachabilityGraph,
    ReachabilityOptions,
    explore_reachability,
)
from repro.petri.ctmc_export import GSPNSolution, GSPNSolver, ctmc_from_net
from repro.petri.dot_export import to_dot
from repro.petri.invariants import (
    InvariantSearchResult,
    incidence_matrix,
    invariant_report,
    p_invariants,
    p_invariants_detailed,
    t_invariants,
    t_invariants_detailed,
    verify_p_invariant,
)
from repro.petri.pnml import from_pnml, load_pnml, save_pnml, to_pnml
from repro.petri.structural import (
    CommonerResult,
    ConflictSet,
    SiphonSearchResult,
    commoner_check,
    immediate_conflicts,
    maximal_trap_within,
    minimal_siphons,
    minimal_traps,
    structural_bounds,
    structurally_dead_transitions,
)

__all__ = [
    "Arc",
    "ArcKind",
    "CommonerResult",
    "ConflictSet",
    "GSPNSolution",
    "GSPNSolver",
    "ImmediateTransition",
    "InvariantSearchResult",
    "Marking",
    "MemoryPolicy",
    "NetStructureError",
    "PetriNet",
    "PetriNetSimulator",
    "Place",
    "ReachabilityGraph",
    "ReachabilityOptions",
    "SimulationResult",
    "SiphonSearchResult",
    "TimedTransition",
    "Transition",
    "commoner_check",
    "ctmc_from_net",
    "explore_reachability",
    "from_pnml",
    "immediate_conflicts",
    "incidence_matrix",
    "invariant_report",
    "load_pnml",
    "maximal_trap_within",
    "minimal_siphons",
    "minimal_traps",
    "p_invariants",
    "p_invariants_detailed",
    "save_pnml",
    "structural_bounds",
    "structurally_dead_transitions",
    "t_invariants",
    "t_invariants_detailed",
    "to_dot",
    "to_pnml",
    "verify_p_invariant",
]
