"""Structured tracing + metrics core: :class:`Span`, :class:`Trace`, and the
contextvar-scoped module API.

Design constraints (see ``docs/observability.md``):

- **Zero dependencies** — stdlib only, so the layer can be imported from the
  innermost solver loops without dragging anything in.
- **Scope-free instrumentation** — library code calls the module-level
  :func:`span` / :func:`incr` / :func:`gauge` helpers; whether anything is
  recorded depends solely on the :class:`Trace` (if any) installed in the
  current :mod:`contextvars` context.  No trace object is plumbed through
  call signatures.
- **Near-free when disabled** — every module-level helper starts with a
  single contextvar read; with no active trace it returns a shared no-op
  immediately.  ``bench_sweep.py`` guards the <2% overhead bound.
- **Mergeable across processes** — timestamps are recorded on the local
  monotonic clock and rebased onto a per-trace wall-clock anchor captured at
  construction, so segments shipped from pool or distributed workers land on
  one (approximately) shared timeline while staying monotonic and
  exact-duration within each worker.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from contextvars import ContextVar, Token
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = [
    "SCHEMA_TRACE",
    "Span",
    "Trace",
    "activate",
    "current_trace",
    "deactivate",
    "enabled",
    "event",
    "gauge",
    "gauge_max",
    "incr",
    "span",
    "tracing",
]

#: Schema tag stamped on the ``meta`` record of every JSONL trace file.
SCHEMA_TRACE = "repro.telemetry.trace/1"


def _json_safe(value: Any) -> Any:
    """Coerce an attribute value to something ``json.dumps`` accepts."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return str(value)


@dataclass
class Span:
    """One timed operation.

    ``t0``/``t1`` are wall-anchored monotonic seconds (epoch-like): within a
    single process they never go backwards and ``t1 - t0`` is an exact
    monotonic-clock duration; across processes they are aligned only as well
    as the hosts' wall clocks.
    """

    name: str
    t0: float
    t1: float
    attrs: Dict[str, Any] = field(default_factory=dict)
    parent: Optional[int] = None  # index into the owning trace's span list
    worker: str = ""

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def set(self, key: str, value: Any) -> None:
        """Attach/overwrite one attribute (API shared with the no-op span)."""
        self.attrs[key] = value

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "t0": self.t0,
            "t1": self.t1,
            "attrs": {str(k): _json_safe(v) for k, v in self.attrs.items()},
            "parent": self.parent,
            "worker": self.worker,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Span":
        return cls(
            name=str(d["name"]),
            t0=float(d["t0"]),
            t1=float(d["t1"]),
            attrs=dict(d.get("attrs") or {}),
            parent=d.get("parent"),
            worker=str(d.get("worker", "")),
        )


class _LiveSpan:
    """Context manager recording one :class:`Span` into a :class:`Trace`.

    The span is appended at ``__enter__`` (so span order is start order and
    the parent index is known) and its ``t1`` is patched at ``__exit__``.
    """

    __slots__ = ("_trace", "_name", "_attrs", "_index")

    def __init__(self, trace: "Trace", name: str, attrs: Dict[str, Any]):
        self._trace = trace
        self._name = name
        self._attrs = attrs
        self._index = -1

    def __enter__(self) -> Span:
        tr = self._trace
        parent = tr._stack[-1] if tr._stack else None
        now = tr.now()
        sp = Span(
            name=self._name,
            t0=now,
            t1=now,
            attrs=self._attrs,
            parent=parent,
            worker=tr.worker,
        )
        self._index = len(tr.spans)
        tr.spans.append(sp)
        tr._stack.append(self._index)
        return sp

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        tr = self._trace
        sp = tr.spans[self._index]
        sp.t1 = tr.now()
        if exc_type is not None and "error" not in sp.attrs:
            sp.attrs["error"] = exc_type.__name__
        stack = tr._stack
        if stack and stack[-1] == self._index:
            stack.pop()
        else:  # interleaved exit (async tasks sharing one trace) — tolerate
            try:
                stack.remove(self._index)
            except ValueError:
                pass
        return False


class Trace:
    """A mutable collection of spans, counters, and gauges for one run.

    Cheap to create; holds only plain data, so it pickles and merges across
    process boundaries.  Use :func:`tracing` (or :func:`activate`) to install
    it as the ambient trace so instrumented library code records into it.
    """

    def __init__(self, name: str = "trace", worker: str = ""):
        self.name = name
        self.worker = worker or f"pid:{os.getpid()}"
        # Wall-clock anchor for the local monotonic clock: now() below is
        # monotonic within this process but epoch-aligned across processes.
        self.anchor = time.time() - time.monotonic()
        self.t_created = self.now()
        self.spans: List[Span] = []
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.meta: Dict[str, Any] = {"pid": os.getpid()}
        # Observer hook: called as on_counter(name, absolute_value) after
        # every increment (used by the CLI progress line).
        self.on_counter: Optional[Callable[[str, float], None]] = None
        self._stack: List[int] = []
        self._shipped: Dict[str, float] = {}

    # -- recording ---------------------------------------------------------

    def now(self) -> float:
        """Wall-anchored monotonic timestamp (seconds)."""
        return self.anchor + time.monotonic()

    def span(self, name: str, **attrs: Any) -> _LiveSpan:
        return _LiveSpan(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> Span:
        """Record a zero-duration span at the current time."""
        now = self.now()
        parent = self._stack[-1] if self._stack else None
        sp = Span(
            name=name, t0=now, t1=now, attrs=attrs, parent=parent, worker=self.worker
        )
        self.spans.append(sp)
        return sp

    def add_span(
        self, name: str, t0: float, t1: float, **attrs: Any
    ) -> Span:
        """Record a span with explicit endpoints (for async/bookkept timing)."""
        sp = Span(name=name, t0=t0, t1=max(t0, t1), attrs=attrs, worker=self.worker)
        self.spans.append(sp)
        return sp

    def incr(self, name: str, value: float = 1.0) -> float:
        total = self.counters.get(name, 0.0) + value
        self.counters[name] = total
        if self.on_counter is not None:
            self.on_counter(name, total)
        return total

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def gauge_max(self, name: str, value: float) -> None:
        """Raise gauge *name* to *value* only if it is a new high-water mark.

        For quantities sampled at volatile moments (queue depth at
        admission time, pool occupancy): the gauge keeps the worst value
        seen instead of whatever happened to be last.
        """
        value = float(value)
        if value > self.gauges.get(name, float("-inf")):
            self.gauges[name] = value

    # -- segment shipping (pool / distributed workers) ---------------------

    def mark(self) -> int:
        """Position bookmark for :meth:`slice_spans`."""
        return len(self.spans)

    def slice_spans(self, mark: int) -> List[Dict[str, Any]]:
        """Serialise spans recorded since ``mark``, rebasing parent indices
        so the slice is self-contained (parents outside the slice become
        top-level)."""
        out: List[Dict[str, Any]] = []
        for sp in self.spans[mark:]:
            d = sp.to_dict()
            p = sp.parent
            d["parent"] = (p - mark) if (p is not None and p >= mark) else None
            out.append(d)
        return out

    def drain_counters(self) -> Dict[str, float]:
        """Counter deltas since the previous drain (for incremental
        shipping to a coordinator; ships each increment exactly once)."""
        deltas: Dict[str, float] = {}
        for name, total in self.counters.items():
            prev = self._shipped.get(name, 0.0)
            if total != prev:
                deltas[name] = total - prev
                self._shipped[name] = total
        return deltas

    def merge_segment(
        self,
        spans: Optional[List[Dict[str, Any]]] = None,
        counters: Optional[Dict[str, float]] = None,
        gauges: Optional[Dict[str, float]] = None,
    ) -> None:
        """Fold a shipped segment (see :meth:`slice_spans` /
        :meth:`drain_counters`) into this trace."""
        base = len(self.spans)
        for d in spans or []:
            sp = Span.from_dict(d)
            if sp.parent is not None:
                sp.parent += base
            self.spans.append(sp)
        for name, delta in (counters or {}).items():
            self.incr(name, float(delta))
        for name, value in (gauges or {}).items():
            self.gauges[name] = float(value)

    # -- aggregation -------------------------------------------------------

    def wall_seconds(self) -> float:
        """Span-covered wall time: latest end minus earliest start."""
        if not self.spans:
            return 0.0
        return max(sp.t1 for sp in self.spans) - min(sp.t0 for sp in self.spans)

    def self_times(self) -> List[float]:
        """Per-span exclusive time: duration minus direct children's."""
        child_total = [0.0] * len(self.spans)
        for sp in self.spans:
            if sp.parent is not None and 0 <= sp.parent < len(self.spans):
                child_total[sp.parent] += sp.duration
        return [
            max(0.0, sp.duration - child_total[i])
            for i, sp in enumerate(self.spans)
        ]

    # -- JSONL persistence -------------------------------------------------

    def write_jsonl(self, path: str) -> None:
        """Write the trace as JSON Lines: one ``meta`` record, then one
        record per span, counter, and gauge."""
        with open(path, "w", encoding="utf-8") as fh:
            meta = {
                "type": "meta",
                "schema": SCHEMA_TRACE,
                "name": self.name,
                "worker": self.worker,
                **{str(k): _json_safe(v) for k, v in self.meta.items()},
            }
            fh.write(json.dumps(meta) + "\n")
            for sp in self.spans:
                fh.write(json.dumps({"type": "span", **sp.to_dict()}) + "\n")
            for name in sorted(self.counters):
                rec = {"type": "counter", "name": name, "value": self.counters[name]}
                fh.write(json.dumps(rec) + "\n")
            for name in sorted(self.gauges):
                rec = {"type": "gauge", "name": name, "value": self.gauges[name]}
                fh.write(json.dumps(rec) + "\n")

    @classmethod
    def read_jsonl(cls, path: str) -> "Trace":
        """Inverse of :meth:`write_jsonl`."""
        trace = cls()
        with open(path, encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from exc
                kind = rec.get("type")
                if kind == "meta":
                    if rec.get("schema") != SCHEMA_TRACE:
                        raise ValueError(
                            f"{path}: unsupported trace schema "
                            f"{rec.get('schema')!r} (expected {SCHEMA_TRACE!r})"
                        )
                    trace.name = str(rec.get("name", "trace"))
                    trace.worker = str(rec.get("worker", ""))
                    trace.meta = {
                        k: v
                        for k, v in rec.items()
                        if k not in {"type", "schema", "name", "worker"}
                    }
                elif kind == "span":
                    trace.spans.append(Span.from_dict(rec))
                elif kind == "counter":
                    trace.counters[str(rec["name"])] = float(rec["value"])
                elif kind == "gauge":
                    trace.gauges[str(rec["name"])] = float(rec["value"])
                else:
                    raise ValueError(f"{path}:{lineno}: unknown record type {kind!r}")
        return trace


# -- contextvar-scoped module API ------------------------------------------

_CURRENT: ContextVar[Optional[Trace]] = ContextVar("repro_obs_trace", default=None)


class _NoopSpan:
    """Shared do-nothing stand-in returned by :func:`span` when disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    def set(self, key: str, value: Any) -> None:
        pass


_NOOP = _NoopSpan()


def current_trace() -> Optional[Trace]:
    """The trace installed in the current context, or ``None``."""
    return _CURRENT.get()


def enabled() -> bool:
    """True when a trace is active in the current context."""
    return _CURRENT.get() is not None


def span(name: str, **attrs: Any) -> Any:
    """Time a block: ``with obs.span("solve.steady", n=n) as sp: ...``.

    No-op (one contextvar read) when no trace is active.
    """
    trace = _CURRENT.get()
    if trace is None:
        return _NOOP
    return trace.span(name, **attrs)


def event(name: str, **attrs: Any) -> None:
    """Record a point-in-time event on the active trace (if any)."""
    trace = _CURRENT.get()
    if trace is not None:
        trace.event(name, **attrs)


def incr(name: str, value: float = 1.0) -> None:
    """Increment a counter on the active trace (if any)."""
    trace = _CURRENT.get()
    if trace is not None:
        trace.incr(name, value)


def gauge(name: str, value: float) -> None:
    """Set a gauge on the active trace (if any)."""
    trace = _CURRENT.get()
    if trace is not None:
        trace.gauge(name, value)


def gauge_max(name: str, value: float) -> None:
    """Raise a high-water-mark gauge on the active trace (if any)."""
    trace = _CURRENT.get()
    if trace is not None:
        trace.gauge_max(name, value)


def activate(trace: Trace) -> Token:
    """Install ``trace`` as the ambient trace; returns a reset token."""
    return _CURRENT.set(trace)


def deactivate(token: Token) -> None:
    _CURRENT.reset(token)


@contextmanager
def tracing(name: str = "trace", worker: str = "") -> Iterator[Trace]:
    """Create and install a fresh :class:`Trace` for the ``with`` body."""
    trace = Trace(name, worker=worker)
    token = _CURRENT.set(trace)
    try:
        yield trace
    finally:
        _CURRENT.reset(token)
