"""CLI progress line: ``[12/64] 3.4 pts/s ETA 15s``, rewritten in place.

Driven by the ``sweep.rows.completed`` counter (the CLI wires
:meth:`ProgressLine.on_counter` into :attr:`Trace.on_counter`), rate-limited
so high-frequency updates cost one monotonic read, and auto-disabled when
stderr is not a TTY or ``--quiet`` is passed.
"""

from __future__ import annotations

import sys
import time
from typing import IO, Any, Optional

__all__ = ["ProgressLine", "stream_is_tty"]


def stream_is_tty(stream: Any) -> bool:
    isatty = getattr(stream, "isatty", None)
    try:
        return bool(isatty()) if callable(isatty) else False
    except (ValueError, OSError):
        return False


class ProgressLine:
    """In-place progress line on a terminal stream.

    >>> import io
    >>> buf = io.StringIO()
    >>> p = ProgressLine(total=4, stream=buf, enabled=True, min_interval=0.0)
    >>> p.update(2)
    >>> "[2/4]" in buf.getvalue()
    True
    """

    def __init__(
        self,
        total: int,
        stream: Optional[IO[str]] = None,
        *,
        enabled: Optional[bool] = None,
        min_interval: float = 0.1,
    ):
        self.total = max(0, int(total))
        self.stream = stream if stream is not None else sys.stderr
        self.enabled = stream_is_tty(self.stream) if enabled is None else enabled
        self.min_interval = min_interval
        self._t0 = time.monotonic()
        self._last_draw = 0.0
        self._last_len = 0
        self._completed = 0

    def on_counter(self, name: str, value: float) -> None:
        """Hook for :attr:`repro.obs.Trace.on_counter`."""
        if name == "sweep.rows.completed":
            self.update(int(value))

    def update(self, completed: int, force: bool = False) -> None:
        self._completed = completed
        if not self.enabled:
            return
        now = time.monotonic()
        done = self.total and completed >= self.total
        if not force and not done and (now - self._last_draw) < self.min_interval:
            return
        self._last_draw = now
        elapsed = max(now - self._t0, 1e-9)
        rate = completed / elapsed
        if rate > 0 and self.total:
            remaining = max(self.total - completed, 0) / rate
            eta = f"ETA {remaining:.0f}s"
        else:
            eta = "ETA --"
        line = f"[{completed}/{self.total}] {rate:.1f} pts/s {eta}"
        pad = " " * max(0, self._last_len - len(line))
        self.stream.write("\r" + line + pad)
        self.stream.flush()
        self._last_len = len(line)

    def finish(self) -> None:
        """Erase the line (the final table should start on a clean row)."""
        if not self.enabled or self._last_len == 0:
            return
        self.stream.write("\r" + " " * self._last_len + "\r")
        self.stream.flush()
        self._last_len = 0
