"""Zero-dependency tracing + metrics for the solver and sweep layers.

Instrumented code calls the module-level helpers; nothing is recorded (one
contextvar read) unless a :class:`Trace` has been installed in the current
context::

    from repro import obs

    with obs.tracing("sweep") as trace:
        with obs.span("solve.steady", method="gmres") as sp:
            ...
            sp.set("iterations", 42)
        obs.incr("solver.gmres.solves")
    trace.write_jsonl("run.trace.jsonl")

See ``docs/observability.md`` for the event/counter catalogue, the JSONL
trace format, and the JSON summary schema.
"""

from repro.obs.profile import attribution_fraction, render_profile
from repro.obs.progress import ProgressLine, stream_is_tty
from repro.obs.summary import (
    SCHEMA_SUMMARY,
    build_summary,
    validate_summary,
    validate_telemetry_file,
    write_summary,
)
from repro.obs.trace import (
    SCHEMA_TRACE,
    Span,
    Trace,
    activate,
    current_trace,
    deactivate,
    enabled,
    event,
    gauge,
    gauge_max,
    incr,
    span,
    tracing,
)

__all__ = [
    "SCHEMA_SUMMARY",
    "SCHEMA_TRACE",
    "ProgressLine",
    "Span",
    "Trace",
    "activate",
    "attribution_fraction",
    "build_summary",
    "current_trace",
    "deactivate",
    "enabled",
    "event",
    "gauge",
    "gauge_max",
    "incr",
    "render_profile",
    "span",
    "stream_is_tty",
    "tracing",
    "validate_summary",
    "validate_telemetry_file",
    "write_summary",
]
