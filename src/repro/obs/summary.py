"""Telemetry summary schema: a compact, diffable JSON aggregate of a trace.

The summary is the cross-PR comparison format: benchmarks emit it (see
``benchmarks/conftest.py``), CI validates it, and ``--profile`` renders the
same aggregation as a table.  Schema (version ``repro.telemetry.summary/1``):

- ``schema`` — the literal schema tag
- ``name`` — trace name (e.g. ``"sweep"``, ``"benchmarks"``)
- ``wall_s`` — span-covered wall time (latest end - earliest start)
- ``spans`` — total span count
- ``phases`` — per span name: ``{"count", "total_s", "self_s", "max_s"}``
- ``counters`` / ``gauges`` — flat name → number maps
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.obs.trace import SCHEMA_TRACE, Trace

__all__ = [
    "SCHEMA_SUMMARY",
    "build_summary",
    "validate_summary",
    "validate_telemetry_file",
    "write_summary",
]

SCHEMA_SUMMARY = "repro.telemetry.summary/1"


def build_summary(trace: Trace) -> Dict[str, Any]:
    """Aggregate a :class:`~repro.obs.trace.Trace` into the summary schema."""
    phases: Dict[str, Dict[str, float]] = {}
    self_times = trace.self_times()
    for i, sp in enumerate(trace.spans):
        ph = phases.setdefault(
            sp.name, {"count": 0, "total_s": 0.0, "self_s": 0.0, "max_s": 0.0}
        )
        ph["count"] += 1
        ph["total_s"] += sp.duration
        ph["self_s"] += self_times[i]
        ph["max_s"] = max(ph["max_s"], sp.duration)
    return {
        "schema": SCHEMA_SUMMARY,
        "name": trace.name,
        "wall_s": trace.wall_seconds(),
        "spans": len(trace.spans),
        "phases": phases,
        "counters": dict(trace.counters),
        "gauges": dict(trace.gauges),
    }


def write_summary(trace: Trace, path: str) -> Dict[str, Any]:
    """Build the summary and write it to ``path`` as pretty JSON."""
    summary = build_summary(trace)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(summary, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return summary


def _require(cond: bool, problems: List[str], message: str) -> None:
    if not cond:
        problems.append(message)


def validate_summary(obj: Any) -> List[str]:
    """Return a list of schema violations (empty when valid)."""
    problems: List[str] = []
    if not isinstance(obj, dict):
        return ["summary is not a JSON object"]
    _require(
        obj.get("schema") == SCHEMA_SUMMARY,
        problems,
        f"schema is {obj.get('schema')!r}, expected {SCHEMA_SUMMARY!r}",
    )
    _require(isinstance(obj.get("name"), str), problems, "name must be a string")
    _require(
        isinstance(obj.get("wall_s"), (int, float)) and obj.get("wall_s", -1) >= 0,
        problems,
        "wall_s must be a non-negative number",
    )
    _require(
        isinstance(obj.get("spans"), int) and obj.get("spans", -1) >= 0,
        problems,
        "spans must be a non-negative integer",
    )
    phases = obj.get("phases")
    if not isinstance(phases, dict):
        problems.append("phases must be an object")
    else:
        for name, ph in phases.items():
            if not isinstance(ph, dict):
                problems.append(f"phase {name!r} must be an object")
                continue
            for key in ("count", "total_s", "self_s", "max_s"):
                val = ph.get(key)
                if not isinstance(val, (int, float)) or val < 0:
                    problems.append(
                        f"phase {name!r}: {key} must be a non-negative number"
                    )
    for section in ("counters", "gauges"):
        values = obj.get(section)
        if not isinstance(values, dict):
            problems.append(f"{section} must be an object")
            continue
        for name, val in values.items():
            if not isinstance(val, (int, float)):
                problems.append(f"{section}[{name!r}] must be a number")
    return problems


def validate_telemetry_file(path: str) -> List[str]:
    """Validate a telemetry artifact on disk.

    Accepts either a JSONL trace (first record ``{"type": "meta", ...}``) or
    a summary JSON document; returns schema violations (empty when valid).
    """
    with open(path, encoding="utf-8") as fh:
        head = fh.read(1)
        fh.seek(0)
        if head == "":
            return ["file is empty"]
        first_line = fh.readline()
    try:
        first = json.loads(first_line)
    except json.JSONDecodeError:
        # Multi-line (indented) JSON document: parse the whole file.
        with open(path, encoding="utf-8") as fh:
            try:
                doc = json.load(fh)
            except json.JSONDecodeError as exc:
                return [f"not JSON: {exc}"]
        return validate_summary(doc)
    if isinstance(first, dict) and first.get("type") == "meta":
        if first.get("schema") != SCHEMA_TRACE:
            return [
                f"trace schema is {first.get('schema')!r}, "
                f"expected {SCHEMA_TRACE!r}"
            ]
        try:
            trace = Trace.read_jsonl(path)
        except ValueError as exc:
            return [str(exc)]
        problems: List[str] = []
        for i, sp in enumerate(trace.spans):
            if sp.t1 < sp.t0:
                problems.append(f"span {i} ({sp.name!r}): t1 < t0")
            if sp.parent is not None and not (0 <= sp.parent < len(trace.spans)):
                problems.append(f"span {i} ({sp.name!r}): parent out of range")
        return problems
    return validate_summary(first)
