"""Validate telemetry artifacts: ``python -m repro.obs FILE [FILE ...]``.

Accepts JSONL traces (``--trace`` output) and summary JSON documents
(``BENCH_*.json``); exits 0 when every file validates, 2 otherwise.  Used by
the CI telemetry-schema validation step.
"""

from __future__ import annotations

import sys
from typing import List

from repro.obs.summary import validate_telemetry_file


def main(argv: List[str]) -> int:
    if not argv:
        print("usage: python -m repro.obs FILE [FILE ...]", file=sys.stderr)
        return 2
    status = 0
    for path in argv:
        try:
            problems = validate_telemetry_file(path)
        except OSError as exc:
            problems = [str(exc)]
        if problems:
            status = 2
            for problem in problems:
                print(f"{path}: {problem}", file=sys.stderr)
        else:
            print(f"{path}: ok")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
