"""``--profile`` rendering: a phase-breakdown table for a trace.

Self-time semantics: each span's exclusive time (duration minus its direct
children) is summed per span name, so in a single-process run the per-phase
percentages partition wall-clock.  On pool/distributed runs worker spans
overlap in real time, so the percentages measure *CPU-seconds relative to
wall* and may exceed 100% in aggregate — that is the point: it shows how much
parallel work the wall-clock bought.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.obs.summary import build_summary
from repro.obs.trace import Trace

__all__ = ["attribution_fraction", "render_profile"]

# Counters surfaced under the phase table (satellite: iteration counts).
_PROFILE_COUNTERS = (
    "solver.gmres.solves",
    "solver.gmres.iterations",
    "solver.power.solves",
    "solver.power.iterations",
    "solver.warm_start.hits",
    "solver.warm_start.misses",
    "solver.ilu.builds",
    "solver.ilu.rebuilds",
    "sweep.rows.completed",
    "sweep.rows.failed",
    "dist.chunks.dispatched",
    "dist.requeues",
    "dist.points.poisoned",
)


def attribution_fraction(trace: Trace) -> float:
    """Fraction of span-covered wall-clock attributed to named phases.

    Computed as 1 minus the root spans' share of exclusive time: whatever
    wall time no named child phase accounts for.  1.0 when every moment
    inside the root span(s) is covered by some named sub-phase.
    """
    wall = trace.wall_seconds()
    if wall <= 0.0:
        return 1.0
    self_times = trace.self_times()
    root_self = sum(
        self_times[i] for i, sp in enumerate(trace.spans) if sp.parent is None
    )
    # With a single root span covering the run, root_self is exactly the
    # unattributed remainder; with parallel workers the coverage can only be
    # better than this estimate, so clamp into [0, 1].
    return min(1.0, max(0.0, 1.0 - root_self / wall))


def _format_rows(trace: Trace) -> Tuple[List[Tuple[str, str, str, str, str]], float]:
    summary = build_summary(trace)
    wall = float(summary["wall_s"])
    rows: List[Tuple[str, str, str, str, str]] = []
    phases = sorted(
        summary["phases"].items(), key=lambda kv: kv[1]["self_s"], reverse=True
    )
    for name, ph in phases:
        pct = 100.0 * ph["self_s"] / wall if wall > 0 else 0.0
        rows.append(
            (
                name,
                f"{int(ph['count'])}",
                f"{ph['total_s']:.4f}",
                f"{ph['self_s']:.4f}",
                f"{pct:.1f}%",
            )
        )
    return rows, wall


def render_profile(trace: Trace, title: str = "phase breakdown") -> str:
    """Render the phase table + counter lines as a plain-text block."""
    rows, wall = _format_rows(trace)
    header = ("phase", "count", "total s", "self s", "% wall")
    table = [header, *rows]
    widths = [max(len(row[i]) for row in table) for i in range(len(header))]
    lines = [f"-- {title}: wall {wall:.4f}s --"]
    for j, row in enumerate(table):
        cells = [row[0].ljust(widths[0])]
        cells += [row[i].rjust(widths[i]) for i in range(1, len(header))]
        lines.append("  ".join(cells))
        if j == 0:
            lines.append("  ".join("-" * w for w in widths))
    coverage = attribution_fraction(trace)
    lines.append(f"attributed to named phases: {100.0 * coverage:.1f}%")
    counter_lines = [
        f"{name} = {trace.counters[name]:g}"
        for name in _PROFILE_COUNTERS
        if name in trace.counters
    ]
    extra = sorted(set(trace.counters) - set(_PROFILE_COUNTERS))
    counter_lines += [f"{name} = {trace.counters[name]:g}" for name in extra]
    if counter_lines:
        lines.append("-- counters --")
        lines.extend(counter_lines)
    if trace.gauges:
        lines.append("-- gauges --")
        lines.extend(
            f"{name} = {trace.gauges[name]:g}" for name in sorted(trace.gauges)
        )
    return "\n".join(lines)
