"""repro — Energy modeling of WSN processors with Petri nets.

A from-scratch reproduction of *"Energy Modeling of Processors in Wireless
Sensor Networks based on Petri Nets"* (Shareef & Zhu, ICPP 2008): five
interchangeable models of a power-managed CPU (discrete-event simulation,
supplementary-variable Markov closed forms, an EDSPN Petri net, an exact
renewal-reward solution, and an Erlang phase-type CTMC) plus every
substrate they need — a DES kernel, a Markov-chain/queueing toolbox, and a
TimeNET-style stochastic Petri net engine.

Quick start::

    from repro.core import CPUModelParams, MarkovSupplementaryModel
    from repro.core import PetriCPUModel, CPUEventSimulator

    params = CPUModelParams.paper_defaults(T=0.3, D=0.001)
    print(MarkovSupplementaryModel(params).solve().fractions().as_percent_dict())
    print(PetriCPUModel(params, seed=1).run(horizon=5000).fractions.as_percent_dict())
    print(CPUEventSimulator(params, seed=2).run(horizon=5000).fractions.as_percent_dict())

Subpackages
-----------
- :mod:`repro.core` — the paper's models and the comparison machinery.
- :mod:`repro.petri` — the EDSPN engine (places, immediate/timed
  transitions, inhibitor arcs, simulation, reachability, CTMC export).
- :mod:`repro.markov` — CTMC/DTMC numerics and queueing closed forms.
- :mod:`repro.des` — the discrete-event kernel (events, RNG streams,
  distributions, output statistics, replications).
- :mod:`repro.sweep` — batched parameter sweeps: rate grids, a
  rebinding sweep runner with optional multiprocessing fan-out, result
  tables (also via ``python -m repro sweep``).
- :mod:`repro.workload` — open/closed/MMPP/trace workload generators.
- :mod:`repro.wsn` — sensor-node context: power profiles, radio, battery,
  network lifetime.
- :mod:`repro.experiments` — regenerate the paper's Figures 4–5 and
  Tables 1–5 (also via ``python -m repro run <id>``).
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
