"""Setuptools shim.

All metadata lives in ``pyproject.toml``; this file exists so the package
can be installed editable in offline environments whose setuptools lacks
the ``wheel`` backend required by the PEP-517 editable path
(``pip install -e . --no-use-pep517``).
"""

from setuptools import setup

setup()
