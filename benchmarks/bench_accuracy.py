"""Cost-of-accuracy benchmark (the paper's Section 6 trade-off).

Times the full accuracy study and prints its table: per model, the
wall-clock needed to land within 1 summed percentage point of the exact
solution, at both ends of the Power Up Delay range.
"""

from repro.experiments.accuracy import (
    render_cost_of_accuracy,
    run_cost_of_accuracy,
)

TARGET_PP = 1.0


def test_cost_of_accuracy(benchmark):
    rows = benchmark.pedantic(
        lambda: run_cost_of_accuracy(
            delays=(0.001, 10.0), target_pct=TARGET_PP, seed=20080901
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_cost_of_accuracy(rows, TARGET_PP))

    by_key = {(r.model, r.power_up_delay): r for r in rows}
    # the paper's Section 6, as assertions:
    # 1. where valid, the analytical Markov model is orders of magnitude
    #    cheaper than simulating the Petri net
    markov_small = by_key[("markov (eqs. 17-19)", 0.001)]
    petri_small = by_key[("petri net", 0.001)]
    assert markov_small.reached_target
    assert markov_small.wall_clock_s * 100.0 < petri_small.wall_clock_s
    # 2. at D = 10 the Markov model cannot reach the target at any cost
    assert not by_key[("markov (eqs. 17-19)", 10.0)].reached_target
    # 3. the stochastic models and the phase-type chain still can
    assert by_key[("petri net", 10.0)].reached_target
    assert by_key[("event simulation", 10.0)].reached_target
    assert by_key[("phase-type (Erlang-32)", 10.0)].reached_target
