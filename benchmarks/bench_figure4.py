"""Figure 4 benchmark: steady-state percentages vs Power Down Threshold.

Regenerates the Figure 4 series (simulation / Markov / Petri net at
D = 0.001 s) and prints them in the paper's layout; pytest-benchmark times
the regeneration.
"""

import numpy as np

from benchmarks.conftest import BENCH_THRESHOLDS, bench_sweep_config
from repro.core.comparison import run_threshold_sweep
from repro.core.params import STATE_NAMES, CPUModelParams
from repro.experiments.reporting import format_table

MODELS = ("simulation", "markov", "petri")


def _regenerate():
    params = CPUModelParams.paper_defaults(D=0.001)
    return run_threshold_sweep(
        params, BENCH_THRESHOLDS, MODELS, bench_sweep_config()
    )


def test_figure4_regeneration(benchmark):
    sweep = benchmark.pedantic(_regenerate, rounds=1, iterations=1)

    rows = []
    for i, t in enumerate(sweep.thresholds):
        for model in MODELS:
            pct = sweep.fractions[model][i].as_percent_dict()
            rows.append([t, model] + [pct[s] for s in STATE_NAMES])
    print()
    print(format_table(
        ["T (s)", "model", "idle %", "standby %", "powerup %", "active %"],
        rows,
        title=(
            "Figure 4 — steady-state percentage of time vs Power Down "
            "Threshold (D = 0.001 s)"
        ),
    ))

    # paper shape assertions: standby falls, idle rises, active ~ 10 %,
    # and all three models agree at this tiny D
    for model in MODELS:
        standby = sweep.series_percent(model, "standby")
        idle = sweep.series_percent(model, "idle")
        active = sweep.series_percent(model, "active")
        assert standby[0] > standby[-1]
        assert idle[0] < idle[-1]
        assert np.all(np.abs(active - 10.0) < 3.0)
    markov = np.concatenate(
        [sweep.series_percent("markov", s) for s in STATE_NAMES]
    )
    petri = np.concatenate(
        [sweep.series_percent("petri", s) for s in STATE_NAMES]
    )
    assert np.max(np.abs(markov - petri)) < 5.0
