"""Tables 1-3 benchmarks: structural/config artifacts.

These regenerate instantly; benchmarking them documents the fixed cost of
building the Figure 3 net and echoing the parameter tables.
"""

from repro.core.params import PXA271, CPUModelParams
from repro.core.petri_cpu import build_cpu_net, describe_transitions
from repro.experiments.reporting import format_table


def test_table1_regeneration(benchmark):
    params = CPUModelParams.paper_defaults()

    def regenerate():
        net = build_cpu_net(params)
        return describe_transitions(params), net

    rows_dicts, net = benchmark(regenerate)
    rows = [
        [r["transition"], r["firing_distribution"], r["delay"], r["priority"]]
        for r in rows_dicts
    ]
    print()
    print(format_table(
        ["Transition", "Firing Distribution", "Delay", "Priority"],
        rows,
        title="Table 1 — CPU Jobs Petri Net Transition Parameters",
    ))
    assert len(rows) == 8
    assert len(net.place_names) == 9


def test_table2_parameters(benchmark):
    params = benchmark(CPUModelParams.paper_defaults)
    print()
    print(format_table(
        ["Parameter", "Value"],
        [
            ["Total Simulated Time", "1000 sec"],
            ["Arrival Rate", f"{params.arrival_rate:g} per sec"],
            ["Service Rate", f"{params.service_rate:g} per sec (mean 0.1 s)"],
        ],
        title="Table 2 — Simulation Parameters",
    ))
    assert params.utilization == 0.1


def test_table3_power_rates(benchmark):
    profile = benchmark(lambda: PXA271)
    print()
    print(format_table(
        ["State", "Power Rate (mW)"],
        [
            ["Standby", profile.standby_mw],
            ["Idle", profile.idle_mw],
            ["Powering Up", profile.powerup_mw],
            ["Active", profile.active_mw],
        ],
        title="Table 3 — Power Rate Parameters for the PXA271 CPU (mW)",
    ))
    assert profile.powerup_mw == 192.442
