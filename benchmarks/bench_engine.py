"""Engine microbenchmarks: the cost drivers behind the paper experiments.

These time the building blocks (DES event loop, Petri token game, CTMC
solve, closed-form evaluation, vectorised job scan) so regressions in the
substrates are visible independently of the experiment harness.
"""

import numpy as np

from repro.core.markov_supplementary import MarkovSupplementaryModel
from repro.core.params import CPUModelParams
from repro.core.petri_cpu import build_cpu_net
from repro.core.phase_type import PhaseTypeModel
from repro.core.simulation_cpu import CPUEventSimulator, simulate_job_scan
from repro.des.engine import Simulator
from repro.markov.ctmc import CTMC
from repro.petri.simulator import PetriNetSimulator


def test_des_engine_event_throughput(benchmark):
    """Raw event loop: schedule-and-run chains of 20k events."""

    def run_chain():
        sim = Simulator()
        remaining = [20_000]

        def tick():
            if remaining[0] > 0:
                remaining[0] -= 1
                sim.schedule(1.0, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return sim.events_executed

    events = benchmark(run_chain)
    assert events == 20_001


def test_petri_token_game_throughput(benchmark):
    """The Figure 3 net for 500 simulated seconds (~3.5k firings)."""
    params = CPUModelParams.paper_defaults(T=0.3, D=0.001)
    net = build_cpu_net(params)

    def run():
        return PetriNetSimulator(net, seed=1).run(horizon=500.0)

    result = benchmark(run)
    assert result.firing_counts["AR"] > 300


def test_cpu_event_simulator_throughput(benchmark):
    """The benchmark simulator for 2000 simulated seconds."""
    params = CPUModelParams.paper_defaults(T=0.3, D=0.001)

    def run():
        return CPUEventSimulator(params, seed=2).run(horizon=2_000.0)

    result = benchmark(run)
    assert result.jobs_served > 1_500


def test_job_scan_throughput(benchmark):
    """The vectorised-input job scan: 50k jobs per call."""
    params = CPUModelParams.paper_defaults(T=0.3, D=0.001)
    rng = np.random.default_rng(3)

    result = benchmark(lambda: simulate_job_scan(params, 50_000, rng))
    assert result.jobs_served == 50_000


def test_markov_closed_form_evaluation(benchmark):
    """One full closed-form solve (the paper's eqs. 11-24)."""
    params = CPUModelParams.paper_defaults(T=0.3, D=0.3)

    st = benchmark(lambda: MarkovSupplementaryModel(params).solve())
    assert 0.0 < st.p_standby < 1.0


def test_phase_type_solve(benchmark):
    """Erlang-16 sparse CTMC assembly + solve at D = 0.3."""
    params = CPUModelParams.paper_defaults(T=0.3, D=0.3)

    sol = benchmark(lambda: PhaseTypeModel(params, stages=16).solve())
    assert sol.truncation_mass < 1e-6


def test_ctmc_steady_state_solve(benchmark):
    """Dense 200-state birth-death steady state."""
    n = 200
    Q = np.zeros((n, n))
    for i in range(n - 1):
        Q[i, i + 1] = 1.0
        Q[i + 1, i] = 2.0
    np.fill_diagonal(Q, -Q.sum(axis=1))
    chain = CTMC(Q)

    pi = benchmark(chain.steady_state)
    assert abs(pi.sum() - 1.0) < 1e-9
