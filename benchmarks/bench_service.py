"""Always-on service benchmarks: warm templates vs cold one-shot sweeps.

The tentpole claim of the sweep service is measured and *asserted* (see
``docs/service.md``): once the daemon has prepared a model's template —
reachability explored, vanishing markings eliminated, solver selected —
repeat queries against the same fingerprint skip all of it.  A **warm
service query** (socket round-trip + admission + cached-template solve)
must beat a **cold one-shot sweep** (fresh backend construction + explore
+ the same solve, i.e. what ``repro sweep`` pays every invocation) by
>= 5x, at bit-identical rows.

The model is sized so preparation honestly dominates: the CPU GSPN at
``buffer 60`` spends ~0.5 s exploring/eliminating for a 125-state chain
whose four-point sweep then solves in single-digit milliseconds.

The measured numbers are additionally written to ``BENCH_service.json``
(times, speedup, configuration) so CI can upload them next to the
pytest-benchmark output as a perf trajectory.
"""

import asyncio
import json
import threading
import time
from pathlib import Path

import numpy as np

from repro.sweep import SweepGrid, SweepRunner
from repro.sweep.service import (
    SweepService,
    build_backend,
    canonical_model_spec,
    request_over_socket,
)

MODEL = {"kind": "gspn", "net": "cpu-gspn", "buffer": 60}
AXES = ["AR=50:120:4"]
METRICS = ["mean_tokens:Active", "mean_tokens:Stand_By", "throughput:SR"]
MIN_SPEEDUP = 5.0
JSON_OUT = Path(__file__).resolve().parent.parent / "BENCH_service.json"


class _DaemonThread:
    """A SweepService on a background event-loop thread (benchmark-local
    copy of the test fixture — benchmarks stay importable on their own)."""

    def __init__(self) -> None:
        self.service = SweepService()
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._main, daemon=True)

    def _main(self) -> None:
        asyncio.run(self._amain())

    async def _amain(self) -> None:
        async with self.service:
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            await self.service.serve_until_drained()

    def __enter__(self) -> "_DaemonThread":
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("service did not start")
        return self

    def __exit__(self, *exc) -> None:
        self._loop.call_soon_threadsafe(self.service.request_drain)
        self._thread.join(timeout=60)

    def query(self, payload):
        host, port = self.service.address
        return request_over_socket(host, port, payload)


def best_of_interleaved(fn_a, fn_b, rounds=4):
    """Best wall time for two contenders, measured in alternating rounds
    (after one untimed warmup each) so a load spike on a noisy CI box
    lands on both sides, not just one."""
    best_a = best_b = float("inf")
    value_a, value_b = fn_a(), fn_b()
    for _ in range(rounds):
        t0 = time.perf_counter()
        value_a = fn_a()
        best_a = min(best_a, time.perf_counter() - t0)
        t0 = time.perf_counter()
        value_b = fn_b()
        best_b = min(best_b, time.perf_counter() - t0)
    return best_a, value_a, best_b, value_b


def test_warm_service_query_beats_cold_one_shot(benchmark):
    spec = canonical_model_spec(MODEL)
    grid = SweepGrid.from_specs(AXES)
    payload = {
        "op": "sweep", "model": MODEL, "axes": AXES, "metrics": METRICS,
    }

    def cold_one_shot():
        # what every `repro sweep` invocation pays: construct the
        # backend (explore + eliminate) and then solve the grid
        backend = build_backend(spec)
        backend.prepare()
        return SweepRunner(backend, METRICS).run(grid)

    with _DaemonThread() as daemon:

        def warm_query():
            reply = daemon.query(payload)
            assert reply["kind"] == "result", reply
            return reply

        t_cold, cold_result, t_warm, warm_reply = best_of_interleaved(
            cold_one_shot, warm_query
        )
        benchmark(warm_query)
        stats = daemon.query({"op": "stats"})["stats"]

    # the warm side really was warm: one build, everything else hit
    assert stats["cache"]["builds"] == 1
    assert stats["cache"]["hits"] >= 1

    # parity first: same rows, bit for bit
    assert cold_result.n_failed == 0
    assert warm_reply["errors"] == []
    cold_rows = np.column_stack([cold_result.column(m) for m in METRICS])
    warm_rows = np.array(warm_reply["rows"])
    assert np.array_equal(warm_rows, cold_rows)

    speedup = t_cold / t_warm
    payload_out = {
        "benchmark": "bench_service",
        "config": {
            "model": MODEL,
            "axes": AXES,
            "metrics": METRICS,
            "grid_points": len(grid.points()),
        },
        "cold_one_shot_seconds": t_cold,
        "warm_query_seconds": t_warm,
        "speedup": speedup,
        "min_speedup_required": MIN_SPEEDUP,
    }
    JSON_OUT.write_text(json.dumps(payload_out, indent=2) + "\n")
    print(
        f"\nservice: cold one-shot {t_cold * 1e3:.1f} ms, "
        f"warm query {t_warm * 1e3:.1f} ms, speedup {speedup:.1f}x "
        f"-> {JSON_OUT.name}"
    )

    assert speedup >= MIN_SPEEDUP, (
        f"warm service query only {speedup:.2f}x over cold one-shot "
        f"(required >= {MIN_SPEEDUP}x; cold {t_cold * 1e3:.1f} ms, "
        f"warm {t_warm * 1e3:.1f} ms)"
    )
