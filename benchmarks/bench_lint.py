"""Lint benchmark: structural verification must cost ~nothing.

The verifier's value proposition is that its default (``standard``)
level runs pure incidence-matrix and graph analyses — siphons, traps,
P-invariants, Commoner — so its cost is a function of the *net* size,
not the marking count.  Two claims are asserted:

1. **Milliseconds, not explorations**: standard-level lint of the
   paper's CPU net (and of a wsn-cluster whose state space is ~119k
   markings) finishes far below the time the deep level spends
   exploring.
2. **Independence from the state space**: growing the wsn-cluster
   buffer (state space x64) leaves the structural lint time flat.
"""

import time

from repro.sweep.nets import build_cpu_gspn_net, build_wsn_cluster_net
from repro.verify import lint_net


def best_of(fn, rounds=5):
    best, value = float("inf"), None
    for _ in range(rounds):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def test_standard_lint_is_milliseconds(benchmark):
    """The acceptance claim: proving the paper net bounded, unit-invariant
    covered and deadlock-free takes milliseconds, zero exploration."""
    net = build_cpu_gspn_net()
    elapsed, report = best_of(lambda: lint_net(net))
    assert report.ok
    assert any("deadlock-free" in f for f in report.facts)
    assert elapsed < 0.05, f"standard lint took {elapsed * 1e3:.1f} ms"
    benchmark(lambda: lint_net(net))


def test_structural_cost_ignores_state_space(benchmark):
    """Same net family, 64x the markings: structural lint time is flat
    because it never enumerates them."""
    small = build_wsn_cluster_net(n_nodes=3, buffer_capacity=7)  # 2k states
    big = build_wsn_cluster_net(n_nodes=3, buffer_capacity=31)  # 131k states
    t_small, _ = best_of(lambda: lint_net(small))
    t_big, report = best_of(lambda: lint_net(big))
    assert report.ok
    assert t_big < 0.05, f"structural lint took {t_big * 1e3:.1f} ms"
    assert t_big < 10 * max(t_small, 1e-4), (
        f"lint time grew with the state space: {t_small:.4f}s -> {t_big:.4f}s"
    )
    benchmark(lambda: lint_net(big))


def test_deep_level_pays_for_exploration():
    """Sanity on the comparison: deep lint of the same cpu net *does*
    explore (hundreds of markings) and still completes."""
    report = lint_net(build_cpu_gspn_net(), level="deep")
    assert any("explored completely" in f for f in report.facts)
