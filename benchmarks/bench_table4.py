"""Table 4 benchmark: avg Δ steady-state percentages vs Power Up Delay."""

from benchmarks.conftest import BENCH_DELAYS, BENCH_THRESHOLDS, bench_sweep_config
from repro.core.comparison import delta_state_percent, run_threshold_sweep
from repro.core.params import CPUModelParams
from repro.experiments.reporting import format_table

MODELS = ("simulation", "markov", "petri")
PAIRS = (("simulation", "markov"), ("simulation", "petri"), ("markov", "petri"))
PAPER_VALUES = {
    0.001: (0.338, 0.351, 0.076),
    0.3: (4.182, 1.677, 3.338),
    10.0: (116.788, 16.046, 103.077),
}


def _regenerate():
    cfg = bench_sweep_config()
    return {
        d: run_threshold_sweep(
            CPUModelParams.paper_defaults(D=d), BENCH_THRESHOLDS, MODELS, cfg
        )
        for d in BENCH_DELAYS
    }


def test_table4_regeneration(benchmark):
    sweeps = benchmark.pedantic(_regenerate, rounds=1, iterations=1)

    rows = []
    for d in BENCH_DELAYS:
        ours = [delta_state_percent(sweeps[d], a, b) for a, b in PAIRS]
        paper = PAPER_VALUES[d]
        rows.append([d] + ours + list(paper))
    print()
    print(format_table(
        [
            "Power Up Delay (s)",
            "Sim-Markov", "Sim-PN", "Markov-PN",
            "paper S-M", "paper S-PN", "paper M-PN",
        ],
        rows,
        title="Table 4 — avg Δ steady-state percentages (%), ours vs paper",
    ))

    measured = {d: dict(zip(["sm", "sp", "mp"],
                            [delta_state_percent(sweeps[d], a, b)
                             for a, b in PAIRS]))
                for d in BENCH_DELAYS}
    # paper shape: Sim-Markov explodes with D; Sim-PN stays bounded;
    # Markov-PN tracks Sim-Markov at large D (the Markov model is the outlier)
    assert measured[10.0]["sm"] > 50.0
    assert measured[10.0]["sm"] > 10.0 * measured[0.001]["sm"]
    assert measured[10.0]["sp"] < 20.0
    assert measured[10.0]["mp"] > 50.0
