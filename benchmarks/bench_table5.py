"""Table 5 benchmark: avg Δ energy consumption (J) vs Power Up Delay."""

from benchmarks.conftest import BENCH_DELAYS, BENCH_THRESHOLDS, bench_sweep_config
from repro.core.comparison import delta_energy, run_threshold_sweep
from repro.core.params import PAPER_TOTAL_SIMULATED_TIME, CPUModelParams
from repro.experiments.reporting import format_table

MODELS = ("simulation", "markov", "petri")
PAIRS = (("simulation", "markov"), ("simulation", "petri"), ("markov", "petri"))
PAPER_VALUES = {
    0.001: (0.154, 0.166, 0.037),
    0.3: (1.558, 0.298, 1.401),
    10.0: (24.866, 1.285, 25.411),
}


def _regenerate():
    cfg = bench_sweep_config(seed=42)
    return {
        d: run_threshold_sweep(
            CPUModelParams.paper_defaults(D=d), BENCH_THRESHOLDS, MODELS, cfg
        )
        for d in BENCH_DELAYS
    }


def test_table5_regeneration(benchmark):
    sweeps = benchmark.pedantic(_regenerate, rounds=1, iterations=1)

    rows = []
    for d in BENCH_DELAYS:
        ours = [
            delta_energy(sweeps[d], a, b, PAPER_TOTAL_SIMULATED_TIME)
            for a, b in PAIRS
        ]
        rows.append([d] + ours + list(PAPER_VALUES[d]))
    print()
    print(format_table(
        [
            "Power Up Delay (s)",
            "Sim-Markov", "Sim-PN", "Markov-PN",
            "paper S-M", "paper S-PN", "paper M-PN",
        ],
        rows,
        title="Table 5 — avg Δ energy (J over 1000 s), ours vs paper",
    ))

    sm = {d: delta_energy(sweeps[d], "simulation", "markov") for d in BENCH_DELAYS}
    sp = {d: delta_energy(sweeps[d], "simulation", "petri") for d in BENCH_DELAYS}
    # paper shape: Markov's energy error grows with D, the PN's does not
    assert sm[10.0] > 10.0
    assert sm[10.0] > 5.0 * sm[0.001]
    assert sp[10.0] < 5.0
