"""Figure 5 benchmark: energy vs Power Down Threshold (eq. 25, 1000 s)."""

import numpy as np

from benchmarks.conftest import BENCH_THRESHOLDS, bench_sweep_config
from repro.core.comparison import run_threshold_sweep
from repro.core.params import PAPER_TOTAL_SIMULATED_TIME, CPUModelParams
from repro.experiments.reporting import ascii_plot, format_table

MODELS = ("simulation", "markov", "petri")


def _regenerate():
    params = CPUModelParams.paper_defaults(D=0.001)
    return run_threshold_sweep(
        params, BENCH_THRESHOLDS, MODELS, bench_sweep_config()
    )


def test_figure5_regeneration(benchmark):
    sweep = benchmark.pedantic(_regenerate, rounds=1, iterations=1)

    series = {
        m: sweep.energies_joules(m, PAPER_TOTAL_SIMULATED_TIME)
        for m in MODELS
    }
    print()
    print(ascii_plot(
        np.asarray(sweep.thresholds),
        series,
        title=(
            "Figure 5 — energy (J over 1000 s) vs Power Down Threshold "
            "(D = 0.001 s)"
        ),
        x_label="Power Down Threshold (s)",
        width=56,
        height=12,
    ))
    rows = [
        [t] + [float(series[m][i]) for m in MODELS]
        for i, t in enumerate(sweep.thresholds)
    ]
    print(format_table(["T (s)"] + [f"{m} (J)" for m in MODELS], rows))

    # paper shape: monotone increasing energy; models within a few J
    for m in MODELS:
        assert np.all(np.diff(series[m]) > -0.5)  # stochastic jitter allowed
    assert np.all(np.diff(series["markov"]) > 0)
    spread = np.max(
        np.abs(series["simulation"] - series["markov"])
    )
    assert spread < 5.0
