"""Batched wire framing benchmarks: rows frames and service micro-batching.

Two claims from the unified-engine refactor are measured and *asserted*:

1. **Batched frames beat pointwise framing** — on a sub-millisecond-per-
   point grid the distributed path is framing-bound: the historical
   protocol pays two messages (plus a one-point solve call) per row,
   while protocol v2 ships whole stacked batches as single ``rows``
   frames.  A 512-point phase-type sweep through one wire-connected
   worker must run >= 3x faster with batched framing than with the
   pointwise baseline (``wire_batching=False``), at bit-identical rows.
   One shard on purpose: with no parallelism in play, the entire
   difference is framing + stacked-solve amortisation.

2. **Micro-batching beats the serialised lock** — N=8 concurrent
   same-template service queries used to solve in single file under the
   per-template lock.  With a batching window they coalesce into one
   stacked flight.  The metric is **solver occupancy** (summed
   ``service.batch`` span time — what the daemon's solve path actually
   burns per burst), which is stable where end-to-end wall time on a
   noisy box is not; the coalesced burst must cost >= 1.5x less than
   the serialised baseline, and the coalescing itself is asserted from
   the service's own flight counters.

The measured numbers are written to ``BENCH_wire_batching.json`` so CI
can upload them next to the other ``BENCH_*.json`` perf trajectories.
"""

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro import obs
from repro.core.params import CPUModelParams
from repro.sweep import BatchedPhaseTypeBackend, SweepGrid, SweepRunner
from repro.sweep.distributed import DistributedSweepRunner
from repro.sweep.service import SweepService, request_over_socket

JSON_OUT = Path(__file__).resolve().parent.parent / "BENCH_wire_batching.json"

# -- claim 1: batched rows frames vs pointwise framing ---------------------

PARAMS = CPUModelParams.paper_defaults(T=0.3, D=0.05)
WIRE_METRICS = ["power"]
#: 512 points that each solve in tens of microseconds: framing-bound.
WIRE_GRID = SweepGrid.from_specs(["T=0.02:2.0:512"])
MIN_WIRE_SPEEDUP = 3.0

# -- claim 2: micro-batched service vs serialised solves -------------------

N_CLIENTS = 8
SERVICE_PAYLOAD = {
    "op": "sweep",
    "model": {"kind": "phase-type-batched", "stages": 2, "n_max": 20},
    "axes": ["T=0.1:1.0:2"],
    "metrics": ["power"],
}
WINDOW_MS = 2.0
MIN_OCCUPANCY_RATIO = 1.5


def _wire_backend() -> BatchedPhaseTypeBackend:
    return BatchedPhaseTypeBackend(PARAMS, stages=2, n_max=6)


def best_of_interleaved(fn_a, fn_b, rounds=4):
    """Best wall time per contender over alternating rounds (one untimed
    warmup each) so a load spike lands on both sides, not just one."""
    best_a = best_b = float("inf")
    value_a, value_b = fn_a(), fn_b()
    for _ in range(rounds):
        t0 = time.perf_counter()
        value_a = fn_a()
        best_a = min(best_a, time.perf_counter() - t0)
        t0 = time.perf_counter()
        value_b = fn_b()
        best_b = min(best_b, time.perf_counter() - t0)
    return best_a, value_a, best_b, value_b


def _write_section(name, payload) -> None:
    merged = {}
    if JSON_OUT.exists():
        merged = json.loads(JSON_OUT.read_text())
    merged["benchmark"] = "bench_wire_batching"
    merged[name] = payload
    JSON_OUT.write_text(json.dumps(merged, indent=2) + "\n")


def test_batched_frames_beat_pointwise_framing(benchmark):
    """512 sub-ms points, one wire worker: rows frames >= 3x pointwise."""
    serial = SweepRunner(_wire_backend(), WIRE_METRICS).run(WIRE_GRID)

    def run(wire_batching):
        result = DistributedSweepRunner(
            _wire_backend(),
            WIRE_METRICS,
            n_shards=1,
            worker_mode="inline",
            wire_batching=wire_batching,
        ).run(WIRE_GRID)
        assert not result.errors
        return result

    t_batched, batched, t_pointwise, pointwise = best_of_interleaved(
        lambda: run(True), lambda: run(False)
    )
    benchmark.extra_info["batched_s"] = t_batched
    benchmark.extra_info["pointwise_s"] = t_pointwise
    benchmark(lambda: None)  # timings above; keep the JSON record

    # parity first: the framing is a wire concern, never a results one
    for result in (batched, pointwise):
        assert result.points == serial.points
        for name in serial.metric_names:
            assert np.array_equal(result.column(name), serial.column(name))

    speedup = t_pointwise / t_batched
    _write_section(
        "wire_framing",
        {
            "grid_points": len(WIRE_GRID),
            "n_shards": 1,
            "pointwise_seconds": t_pointwise,
            "batched_seconds": t_batched,
            "speedup": speedup,
            "min_speedup_required": MIN_WIRE_SPEEDUP,
        },
    )
    print(
        f"\nwire framing over {len(WIRE_GRID)} points: pointwise "
        f"{t_pointwise * 1e3:.1f} ms, batched frames {t_batched * 1e3:.1f} ms, "
        f"speedup {speedup:.2f}x -> {JSON_OUT.name}"
    )
    assert speedup >= MIN_WIRE_SPEEDUP, (
        f"batched rows frames only {speedup:.2f}x over pointwise framing "
        f"(required >= {MIN_WIRE_SPEEDUP}x; pointwise {t_pointwise * 1e3:.1f} "
        f"ms, batched {t_batched * 1e3:.1f} ms)"
    )


class _DaemonThread:
    """A SweepService on a background event-loop thread with its own
    trace (benchmark-local copy of the test fixture — benchmarks stay
    importable on their own)."""

    def __init__(self, **service_kwargs) -> None:
        self.service = SweepService(**service_kwargs)
        self.trace = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._main, daemon=True)

    def _main(self) -> None:
        self.trace = obs.Trace("bench-wire-batching")
        token = obs.activate(self.trace)
        try:
            asyncio.run(self._amain())
        finally:
            obs.deactivate(token)

    async def _amain(self) -> None:
        async with self.service:
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            await self.service.serve_until_drained()

    def __enter__(self) -> "_DaemonThread":
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("service did not start")
        return self

    def __exit__(self, *exc) -> None:
        self._loop.call_soon_threadsafe(self.service.request_drain)
        self._thread.join(timeout=60)

    def query(self, payload):
        host, port = self.service.address
        return request_over_socket(host, port, payload)

    def occupancy(self) -> float:
        """Total solver-path time burnt so far (``service.batch`` spans)."""
        return sum(
            s.duration for s in self.trace.spans if s.name == "service.batch"
        )

    def best_occupancy(self, run, rounds=4) -> float:
        best = float("inf")
        for _ in range(rounds):
            base = self.occupancy()
            run()
            best = min(best, self.occupancy() - base)
        return best


def test_micro_batched_service_beats_serialised_solves(benchmark):
    """N=8 concurrent steady queries: one coalesced flight burns >= 1.5x
    less solver time than the serialised per-request baseline."""
    admission = {"max_inflight": N_CLIENTS, "max_pending": N_CLIENTS}

    # baseline: no window — what the per-template lock used to serialise
    # every request into (one flight each, solved in single file)
    with _DaemonThread(batch_window_ms=0.0, **admission) as daemon:
        reference = daemon.query(SERVICE_PAYLOAD)  # warm the template
        assert reference["kind"] == "result", reference
        occ_serialised = daemon.best_occupancy(
            lambda: [daemon.query(SERVICE_PAYLOAD) for _ in range(N_CLIENTS)]
        )

    with _DaemonThread(batch_window_ms=WINDOW_MS, **admission) as daemon:
        daemon.query(SERVICE_PAYLOAD)

        def burst():
            with ThreadPoolExecutor(N_CLIENTS) as pool:
                replies = list(
                    pool.map(
                        lambda _: daemon.query(SERVICE_PAYLOAD),
                        range(N_CLIENTS),
                    )
                )
            for reply in replies:
                assert reply["kind"] == "result", reply
                assert reply["rows"] == reference["rows"]

        occ_coalesced = daemon.best_occupancy(burst)
        stats = daemon.query({"op": "stats"})["stats"]["batching"]

    benchmark.extra_info["serialised_s"] = occ_serialised
    benchmark.extra_info["coalesced_s"] = occ_coalesced
    benchmark(lambda: None)  # timings above; keep the JSON record

    # the bursts really coalesced: most requests rode someone else's
    # flight instead of opening their own
    assert stats["coalesced"] >= stats["flights"]

    ratio = occ_serialised / occ_coalesced
    _write_section(
        "service_micro_batch",
        {
            "n_clients": N_CLIENTS,
            "window_ms": WINDOW_MS,
            "payload": SERVICE_PAYLOAD,
            "serialised_occupancy_seconds": occ_serialised,
            "coalesced_occupancy_seconds": occ_coalesced,
            "occupancy_ratio": ratio,
            "min_ratio_required": MIN_OCCUPANCY_RATIO,
            "flights": stats["flights"],
            "requests_coalesced": stats["coalesced"],
        },
    )
    print(
        f"\nservice micro-batch, {N_CLIENTS} concurrent clients: serialised "
        f"{occ_serialised * 1e3:.2f} ms solver time per burst, coalesced "
        f"{occ_coalesced * 1e3:.2f} ms, ratio {ratio:.2f}x "
        f"({stats['coalesced']} requests coalesced over {stats['flights']} "
        f"flights) -> {JSON_OUT.name}"
    )
    assert ratio >= MIN_OCCUPANCY_RATIO, (
        f"coalesced burst only {ratio:.2f}x cheaper than serialised "
        f"(required >= {MIN_OCCUPANCY_RATIO}x; serialised "
        f"{occ_serialised * 1e3:.2f} ms, coalesced {occ_coalesced * 1e3:.2f} ms)"
    )
