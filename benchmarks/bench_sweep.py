"""Sweep-subsystem benchmarks: batched rate rebinding vs. naive reduction.

Two claims are measured and *asserted*, not just timed:

1. A >= 20-point rate sweep through :class:`repro.sweep.SweepRunner`
   (explore once, re-bind rates per point) beats the naive loop that calls
   :func:`repro.petri.ctmc_export.ctmc_from_net` per point by >= 5x, while
   producing identical numbers.
2. The sparse and dense CTMC backends agree to 1e-9 on steady-state and
   transient distributions for the repo's seed GSPNs (M/M/1/K, the staged
   variant with vanishing markings, the weighted-split net, and the
   exponentialised Figure 3 CPU net).
"""

import time

import numpy as np
import pytest

from repro.des.distributions import Exponential
from repro.petri.ctmc_export import GSPNSolver, ctmc_from_net
from repro.petri.net import PetriNet
from repro.sweep import SweepGrid, SweepRunner, build_cpu_gspn_net, build_mm1k_net

SWEEP_RATES = tuple(0.2 + 0.12 * i for i in range(24))  # 24-point grid


def staged_mm1k_net(lam: float = 1.3, mu: float = 2.2, K: int = 5) -> PetriNet:
    """M/M/1/K with arrivals routed through an immediate stage (vanishing)."""
    net = PetriNet("staged")
    net.add_place("free", initial=K)
    net.add_place("staging")
    net.add_place("queue")
    net.add_timed_transition("arrive", Exponential(lam))
    net.add_input_arc("free", "arrive")
    net.add_output_arc("arrive", "staging")
    net.add_immediate_transition("route")
    net.add_input_arc("staging", "route")
    net.add_output_arc("route", "queue")
    net.add_timed_transition("serve", Exponential(mu))
    net.add_input_arc("queue", "serve")
    net.add_output_arc("serve", "free")
    return net


def split_net(lam: float = 1.0, mu: float = 5.0) -> PetriNet:
    """Arrivals split 3:1 between two queues by immediate weights."""
    net = PetriNet("split")
    net.add_place("gen", initial=1)
    net.add_place("staging")
    net.add_place("qa", capacity=30)
    net.add_place("qb", capacity=30)
    net.add_timed_transition("arrive", Exponential(lam))
    net.add_input_arc("gen", "arrive")
    net.add_output_arc("arrive", "staging")
    net.add_immediate_transition("to_a", weight=3.0)
    net.add_input_arc("staging", "to_a")
    net.add_output_arc("to_a", "qa")
    net.add_output_arc("to_a", "gen")
    net.add_immediate_transition("to_b", weight=1.0)
    net.add_input_arc("staging", "to_b")
    net.add_output_arc("to_b", "qb")
    net.add_output_arc("to_b", "gen")
    net.add_timed_transition("serve_a", Exponential(mu))
    net.add_input_arc("qa", "serve_a")
    net.add_timed_transition("serve_b", Exponential(mu))
    net.add_input_arc("qb", "serve_b")
    return net


SEED_NETS = {
    "mm1k": build_mm1k_net,
    "staged-mm1k": staged_mm1k_net,
    "split": split_net,
    "cpu-gspn": build_cpu_gspn_net,
}


def test_sweep_speedup_vs_pointwise(benchmark):
    """24-point arrival-rate sweep: batched must be >= 5x the naive loop."""
    grid = SweepGrid({"AR": SWEEP_RATES})

    def naive():
        return [
            ctmc_from_net(_cpu_net_with_arrival(r)).mean_tokens("Active")
            for r in SWEEP_RATES
        ]

    def batched():
        runner = SweepRunner(build_cpu_gspn_net(), ["mean_tokens:Active"])
        return runner.run(grid).column("mean_tokens:Active")

    def best_of(fn, rounds=3):
        best, value = float("inf"), None
        for _ in range(rounds):
            t0 = time.perf_counter()
            value = fn()
            best = min(best, time.perf_counter() - t0)
        return best, value

    t_naive, naive_vals = best_of(naive)
    batched_vals = benchmark(batched)
    t_batched, _ = best_of(batched)

    np.testing.assert_allclose(batched_vals, naive_vals, rtol=1e-9, atol=1e-12)
    speedup = t_naive / t_batched
    print(
        f"\nsweep of {len(SWEEP_RATES)} points: naive {t_naive * 1e3:.1f} ms, "
        f"batched {t_batched * 1e3:.1f} ms, speedup {speedup:.1f}x"
    )
    assert speedup >= 5.0, f"batched sweep only {speedup:.1f}x faster"


def _cpu_net_with_arrival(rate: float) -> PetriNet:
    """Naive path: rebuild the CPU net from scratch for one arrival rate."""
    from repro.core.params import CPUModelParams

    return build_cpu_gspn_net(
        CPUModelParams(
            arrival_rate=rate,
            service_rate=10.0,
            power_down_threshold=0.3,
            power_up_delay=0.001,
        )
    )


@pytest.mark.parametrize("name", sorted(SEED_NETS))
def test_sparse_dense_agreement(benchmark, name):
    """Both backends agree to 1e-9 on steady state and transients."""
    net_factory = SEED_NETS[name]

    def solve_both():
        solver = GSPNSolver(net_factory())
        return solver.solve(backend="dense"), solver.solve(backend="sparse")

    dense_sol, sparse_sol = benchmark(solve_both)
    assert dense_sol.ctmc.backend == "dense"
    assert sparse_sol.ctmc.backend == "sparse"

    pi_d = dense_sol.ctmc.steady_state()
    pi_s = sparse_sol.ctmc.steady_state()
    assert np.max(np.abs(pi_d - pi_s)) < 1e-9

    p0 = dense_sol.initial_distribution
    for t in (0.1, 1.0, 10.0):
        trans_d = dense_sol.ctmc.transient(p0, t)
        trans_s = sparse_sol.ctmc.transient(p0, t)
        assert np.max(np.abs(trans_d - trans_s)) < 1e-9
    print(f"\n{name}: {dense_sol.ctmc.n} states, sparse == dense to 1e-9")
