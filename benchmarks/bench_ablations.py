"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. **Memory policy of the power-down timer** — the paper's semantics need
   RESAMPLE (the idle clock restarts whenever a job interrupts it).  The
   ablation runs the same net with AGE memory and shows the physics change:
   an age-memory timer accumulates idle time across interruptions and
   powers the CPU down far more often.
2. **Phase-type stage count** — accuracy vs solve cost as Erlang stages
   grow (the "fix the Markov model" extension).
3. **Vanishing-marking handling** — CTMC export of a staged GSPN vs the
   equivalent direct net: the elimination step's overhead.
"""

import numpy as np
import pytest

from repro.core.exact_renewal import ExactRenewalModel
from repro.core.params import CPUModelParams
from repro.core.petri_cpu import PetriCPUModel, build_cpu_net
from repro.core.phase_type import PhaseTypeModel
from repro.des.distributions import Exponential
from repro.experiments.reporting import format_table
from repro.petri.ctmc_export import ctmc_from_net
from repro.petri.net import PetriNet
from repro.petri.simulator import PetriNetSimulator
from repro.petri.transitions import MemoryPolicy, TimedTransition


def test_ablation_pdt_memory_policy(benchmark):
    """RESAMPLE matches the exact model; AGE changes the physics."""
    params = CPUModelParams.paper_defaults(T=0.5, D=0.001)
    exact = ExactRenewalModel(params).solve().fractions()

    def run_with_policy(policy: MemoryPolicy):
        net = build_cpu_net(params)
        pdt = net.transition("PDT")
        assert isinstance(pdt, TimedTransition)
        pdt.memory_policy = policy
        net._compiled = None  # structure reused, recompile defensively
        sim = PetriNetSimulator(net, seed=3)
        compiled = net.compile()
        i_on = compiled.place_names.index("CPU_ON")
        i_act = compiled.place_names.index("Active")
        sim.watch(
            "idle_state",
            lambda m, a=i_on, b=i_act: 1.0 if m[a] >= 1 and m[b] == 0 else 0.0,
        )
        return sim.run(horizon=8_000.0, warmup=200.0)

    resample = benchmark.pedantic(
        lambda: run_with_policy(MemoryPolicy.RESAMPLE), rounds=1, iterations=1
    )
    age = run_with_policy(MemoryPolicy.AGE)

    rows = [
        ["RESAMPLE (paper semantics)",
         100 * resample.watcher("idle_state"),
         100 * resample.mean_tokens("Stand_By")],
        ["AGE (ablation)",
         100 * age.watcher("idle_state"),
         100 * age.mean_tokens("Stand_By")],
        ["exact (RESAMPLE physics)",
         100 * exact.idle, 100 * exact.standby],
    ]
    print()
    print(format_table(
        ["PDT memory policy", "idle %", "standby %"],
        rows,
        title="Ablation — power-down timer memory policy (T = 0.5 s)",
    ))

    # RESAMPLE reproduces the exact idle fraction; AGE accumulates idle age
    # across busy interruptions and sleeps much more
    assert abs(resample.watcher("idle_state") - exact.idle) < 0.02
    assert age.mean_tokens("Stand_By") > resample.mean_tokens("Stand_By") + 0.05


@pytest.mark.parametrize("stages", [1, 8, 64])
def test_ablation_phase_type_stages(benchmark, stages):
    """Erlang stage count: error vs cost (prints one row per k)."""
    params = CPUModelParams.paper_defaults(T=0.3, D=10.0)
    exact = ExactRenewalModel(params).solve().fractions()

    sol = benchmark(lambda: PhaseTypeModel(params, stages=stages).solve())
    err = 100.0 * sol.fractions.l1_distance(exact)
    print(
        f"\nErlang-{stages:<3d}: {sol.n_states:5d} states, "
        f"summed-state error {err:8.4f} pp"
    )
    assert err < 6.0  # even k = 1 stays in single digits at D = 10


def test_ablation_vanishing_elimination(benchmark):
    """CTMC export cost with vanishing markings in the state space."""
    lam, mu, K = 1.0, 2.0, 40

    def staged_net() -> PetriNet:
        net = PetriNet("staged")
        net.add_place("free", initial=K)
        net.add_place("staging")
        net.add_place("queue")
        net.add_timed_transition("arrive", Exponential(lam))
        net.add_input_arc("free", "arrive")
        net.add_output_arc("arrive", "staging")
        net.add_immediate_transition("route")
        net.add_input_arc("staging", "route")
        net.add_output_arc("route", "queue")
        net.add_timed_transition("serve", Exponential(mu))
        net.add_input_arc("queue", "serve")
        net.add_output_arc("serve", "free")
        return net

    sol = benchmark(lambda: ctmc_from_net(staged_net()))
    # elimination must reproduce the textbook M/M/1/K mean queue
    from repro.markov.queueing import MM1KQueue

    want = MM1KQueue(lam, mu, K).mean_number_in_system()
    assert sol.mean_tokens("queue") == pytest.approx(want, rel=1e-8)
    print(
        f"\n{len(sol.graph.markings)} markings "
        f"({len(sol.tangible_markings)} tangible) -> "
        f"{sol.ctmc.n}-state CTMC"
    )
