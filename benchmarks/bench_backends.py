"""Model-backend benchmarks: batched phase-type sweeps vs. fresh solves.

Three claims are measured and *asserted*, not just timed:

1. A >= 20-point Figure 4/5-style threshold sweep through the phase-type
   backend — stage structure, CSC pattern, and symbolic LU analysis built
   once, per-point solves numeric-only — beats the naive loop that builds
   a fresh template per point by >= 3x.
2. The batched sweep matches pointwise :class:`repro.core.phase_type`
   solves to 1e-9 (the subsystem adds speed, never error).
3. The exact-renewal backend agrees with the phase-type backend across the
   same grid to the Erlang approximation error (a free cross-check that
   both new backends solve the same model).
"""

import time

import numpy as np

from repro.core.params import CPUModelParams
from repro.core.phase_type import PhaseTypeModel
from repro.sweep import PhaseTypeBackend, RenewalBackend, SweepGrid, SweepRunner

PARAMS = CPUModelParams.paper_defaults(T=0.3, D=0.05)
THRESHOLDS = tuple(0.08 + 0.08 * i for i in range(24))  # 24-point grid
STAGES = 16
N_MAX = 40
METRICS = ("fraction:standby", "fraction:idle", "fraction:powerup", "power")


def best_of(fn, rounds=3):
    best, value = float("inf"), None
    for _ in range(rounds):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def _pointwise_reference() -> np.ndarray:
    """Fresh repro.core.phase_type solve per point (the 1e-9 oracle)."""
    rows = []
    for T in THRESHOLDS:
        sol = PhaseTypeModel(
            PARAMS.with_threshold(T), stages=STAGES, n_max=N_MAX
        ).solve()
        rows.append(
            (
                sol.fractions.standby,
                sol.fractions.idle,
                sol.fractions.powerup,
                PARAMS.profile.average_power_mw(sol.fractions),
            )
        )
    return np.asarray(rows)


def test_phase_type_sweep_speedup_vs_fresh_templates(benchmark):
    """24-point threshold sweep: shared template must be >= 3x fresh."""
    grid = SweepGrid({"T": THRESHOLDS})

    def fresh():
        # what the sweep amortises: a fresh backend (stage structure, CSC
        # pattern, symbolic analysis) per point — the phase-type analogue
        # of bench_sweep's ctmc_from_net-per-point naive loop
        rows = []
        for T in THRESHOLDS:
            backend = PhaseTypeBackend(
                PARAMS.with_threshold(T), stages=STAGES, n_max=N_MAX
            )
            sol = backend.solve({"T": T})
            rows.append([backend.evaluate(sol, m) for m in METRICS])
        return np.asarray(rows)

    def batched():
        backend = PhaseTypeBackend(PARAMS, stages=STAGES, n_max=N_MAX)
        result = SweepRunner(backend, list(METRICS)).run(grid)
        return np.column_stack([result.column(m) for m in METRICS])

    t_fresh, fresh_vals = best_of(fresh)
    batched_vals = benchmark(batched)
    t_batched, _ = best_of(batched)

    np.testing.assert_allclose(batched_vals, fresh_vals, rtol=0, atol=1e-9)
    np.testing.assert_allclose(
        batched_vals, _pointwise_reference(), rtol=0, atol=1e-9
    )
    speedup = t_fresh / t_batched
    print(
        f"\nphase-type sweep of {len(THRESHOLDS)} points "
        f"({1 + STAGES * N_MAX + N_MAX + STAGES} states): "
        f"fresh {t_fresh * 1e3:.1f} ms, batched {t_batched * 1e3:.1f} ms, "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= 3.0, f"batched phase-type sweep only {speedup:.1f}x faster"


def test_renewal_cross_checks_phase_type(benchmark):
    """Closed form vs. stage expansion across the grid: Erlang-error close."""
    grid = SweepGrid({"T": THRESHOLDS})

    def both():
        approx = SweepRunner(
            PhaseTypeBackend(PARAMS, stages=64, n_max=N_MAX),
            ["fraction:standby"],
        ).run(grid)
        exact = SweepRunner(RenewalBackend(PARAMS), ["fraction:standby"]).run(
            grid
        )
        return approx, exact

    approx, exact = benchmark(both)
    gap = np.max(
        np.abs(
            approx.column("fraction:standby") - exact.column("fraction:standby")
        )
    )
    print(f"\nmax |phase-type(k=64) - renewal| over the grid: {gap:.2e}")
    assert gap < 5e-3, f"cross-check gap {gap:.2e}"
