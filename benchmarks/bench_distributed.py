"""Distributed fan-out benchmarks: speedup, parity, fault tolerance.

Three claims are measured and *asserted*, not just timed:

1. **Speedup** — a >= 64-point wsn-cluster sweep through
   :class:`~repro.sweep.distributed.DistributedSweepRunner` with 4 local
   worker processes beats the serial :class:`~repro.sweep.SweepRunner`
   by >= 3x wall-clock.  (Requires >= 4 usable cores — four workers on
   one core time-slice, they do not parallelise — so the assertion is
   skipped below that; CI runs it.)
2. **Exact parity** — the distributed result table is *bit-for-bit*
   identical to the serial runner's.  The per-point chains solve via the
   direct sparse LU, whose result is warm-start independent, and the
   COLAMD column permutation each worker derives depends only on the
   rate-independent sparsity pattern — so sharding cannot perturb a
   single bit.
3. **Fault tolerance** — a worker killed mid-sweep (hard ``os._exit``
   after a few rows, connection reset mid-chunk) costs nothing but time:
   the survivors absorb the requeued points and parity still holds
   bit-for-bit.  This one runs everywhere, single core included.
"""

import os
import time

import numpy as np
import pytest

from repro.sweep import SweepGrid, SweepRunner, build_wsn_cluster_net
from repro.sweep.backends import GSPNBackend
from repro.sweep.distributed import DistributedSweepRunner

N_WORKERS = 4
METRICS = ["mean_tokens:buf0", "mean_tokens:buf0@20"]

#: 16 x 4 = 64 grid points (the acceptance floor).
SPEEDUP_GRID = SweepGrid(
    {
        "arr0": [0.3 + 0.09 * i for i in range(16)],
        "snd0": [1.6, 2.0, 2.4, 2.8],
    }
)

#: Smaller state space for the everywhere-run fault-injection check.
FAULT_GRID = SweepGrid({"arr0": [0.25 + 0.07 * i for i in range(24)]})


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _backend(buffer_capacity: int) -> GSPNBackend:
    # force the sparse path: every per-point chain then solves through
    # the shared-pattern sparse LU, identical in every process
    return GSPNBackend(
        build_wsn_cluster_net(buffer_capacity=buffer_capacity),
        ctmc_backend="sparse",
    )


def _assert_bitwise(result, reference) -> None:
    assert result.points == reference.points
    assert not result.errors and not reference.errors
    for name in reference.metric_names:
        got, want = result.column(name), reference.column(name)
        assert np.array_equal(got, want), (
            f"{name}: distributed differs from serial by "
            f"{np.max(np.abs(got - want)):.3e}"
        )


@pytest.mark.skipif(
    _usable_cpus() < N_WORKERS,
    reason=(
        f"the >= 3x speedup assertion needs >= {N_WORKERS} cores "
        f"(have {_usable_cpus()}); CI runs it"
    ),
)
def test_distributed_speedup_and_exact_parity(benchmark):
    """64-point sweep, 4 local workers: >= 3x serial, bit-identical rows."""
    assert len(SPEEDUP_GRID) >= 64

    t0 = time.perf_counter()
    serial = SweepRunner(_backend(8), METRICS).run(SPEEDUP_GRID)
    t_serial = time.perf_counter() - t0

    def distributed():
        return DistributedSweepRunner(
            _backend(8), METRICS, n_shards=N_WORKERS
        ).run(SPEEDUP_GRID)

    t0 = time.perf_counter()
    result = distributed()
    t_distributed = time.perf_counter() - t0
    benchmark.extra_info["serial_s"] = t_serial
    benchmark.extra_info["distributed_s"] = t_distributed
    benchmark(lambda: None)  # timings above; keep the JSON record

    _assert_bitwise(result, serial)
    speedup = t_serial / t_distributed
    print(
        f"\n{len(SPEEDUP_GRID)}-point sweep: serial {t_serial:.2f} s, "
        f"{N_WORKERS} workers {t_distributed:.2f} s, speedup {speedup:.2f}x"
    )
    assert speedup >= 3.0, (
        f"distributed sweep only {speedup:.2f}x faster with "
        f"{N_WORKERS} workers"
    )


def test_worker_killed_mid_sweep_still_exact(benchmark):
    """Hard-kill one of the workers after 5 rows: completion + parity."""
    serial = SweepRunner(_backend(6), METRICS).run(FAULT_GRID)

    def faulty_distributed():
        return DistributedSweepRunner(
            _backend(6),
            METRICS,
            n_shards=2,
            _fault_injection={"die_after_rows": 5},
        ).run(FAULT_GRID)

    result = benchmark.pedantic(faulty_distributed, rounds=1, iterations=1)
    _assert_bitwise(result, serial)
    print(
        f"\nworker killed after 5 of {len(FAULT_GRID)} rows: sweep completed "
        "with bit-for-bit parity"
    )
