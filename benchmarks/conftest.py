"""Shared configuration for the benchmark harness.

Every paper artifact gets one benchmark module; running::

    pytest benchmarks/ --benchmark-only

regenerates each table/figure (printing the same rows/series the paper
reports) while pytest-benchmark records the regeneration cost.  The
benchmark configs are deliberately small — the point is the *shape* of the
reproduced numbers and a stable timing baseline, not publication-grade
precision; use ``python -m repro run <id> --full`` for that.

``--bench-telemetry=FILE`` additionally writes every benchmark's wall time
as a :mod:`repro.obs` telemetry summary (``repro.telemetry.summary/1``) —
one phase per benchmark, validated by ``python -m repro.obs FILE`` — which
is what CI uploads as the cross-PR ``BENCH_*.json`` perf trajectory.  The
trace is kept *off* the ambient context on purpose: benchmarks that measure
the telemetry layer's own disabled-mode overhead must really run disabled.
"""

import pytest

from repro import obs
from repro.core.comparison import SweepConfig


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--bench-telemetry",
        default=None,
        metavar="FILE",
        help=(
            "write per-benchmark wall times as a repro.obs telemetry "
            "summary JSON (schema repro.telemetry.summary/1)"
        ),
    )


def pytest_configure(config: pytest.Config) -> None:
    if config.getoption("--bench-telemetry"):
        config._bench_trace = obs.Trace("benchmarks")  # type: ignore[attr-defined]


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item: pytest.Item):
    trace: obs.Trace = getattr(item.config, "_bench_trace", None)
    if trace is None:
        yield
        return
    t0 = trace.now()
    yield
    trace.add_span(f"bench.{item.name}", t0, trace.now(), nodeid=item.nodeid)
    trace.incr("bench.tests")


def pytest_sessionfinish(session: pytest.Session, exitstatus: int) -> None:
    trace = getattr(session.config, "_bench_trace", None)
    if trace is not None:
        path = session.config.getoption("--bench-telemetry")
        obs.write_summary(trace, path)

#: Threshold grid used by the benchmark-sized sweeps (the paper uses a
#: 0.1-step grid; benchmarks use 0.25 to stay fast).
BENCH_THRESHOLDS = (0.0, 0.25, 0.5, 0.75, 1.0)

#: The paper's Table 4/5 Power Up Delay grid.
BENCH_DELAYS = (0.001, 0.3, 10.0)


def bench_sweep_config(seed: int = 20080901) -> SweepConfig:
    """Small-but-honest stochastic model configuration."""
    return SweepConfig(
        sim_horizon=1_500.0,
        sim_warmup=100.0,
        sim_replications=2,
        petri_horizon=1_500.0,
        petri_warmup=100.0,
        petri_replications=1,
        phase_stages=16,
        seed=seed,
    )


@pytest.fixture(scope="session")
def sweep_config() -> SweepConfig:
    return bench_sweep_config()
