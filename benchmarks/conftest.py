"""Shared configuration for the benchmark harness.

Every paper artifact gets one benchmark module; running::

    pytest benchmarks/ --benchmark-only

regenerates each table/figure (printing the same rows/series the paper
reports) while pytest-benchmark records the regeneration cost.  The
benchmark configs are deliberately small — the point is the *shape* of the
reproduced numbers and a stable timing baseline, not publication-grade
precision; use ``python -m repro run <id> --full`` for that.
"""

import pytest

from repro.core.comparison import SweepConfig

#: Threshold grid used by the benchmark-sized sweeps (the paper uses a
#: 0.1-step grid; benchmarks use 0.25 to stay fast).
BENCH_THRESHOLDS = (0.0, 0.25, 0.5, 0.75, 1.0)

#: The paper's Table 4/5 Power Up Delay grid.
BENCH_DELAYS = (0.001, 0.3, 10.0)


def bench_sweep_config(seed: int = 20080901) -> SweepConfig:
    """Small-but-honest stochastic model configuration."""
    return SweepConfig(
        sim_horizon=1_500.0,
        sim_warmup=100.0,
        sim_replications=2,
        petri_horizon=1_500.0,
        petri_warmup=100.0,
        petri_replications=1,
        phase_stages=16,
        seed=seed,
    )


@pytest.fixture(scope="session")
def sweep_config() -> SweepConfig:
    return bench_sweep_config()
