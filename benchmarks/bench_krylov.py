"""Krylov steady-state benchmarks: iterative solvers past the LU wall.

Three claims are measured and *asserted*, not just timed:

1. **Scale**: ILU-preconditioned GMRES solves a stage-expanded
   deterministic-delay chain >= 10x larger than the LU demo size (the
   deep-buffer scenario the direct factorisation cannot comfortably
   hold), and the solution is a genuine distribution with negligible
   truncation mass.
2. **Parity**: where both run, GMRES matches the direct LU solve to 1e-8
   (power iteration is cross-checked at a smaller size).
3. **Warm starts**: a dense threshold sweep through the shared-cache
   iterative path — previous point's ``pi`` as the initial guess, one
   ILU preconditioner amortised across the grid — beats cold per-point
   GMRES (zero initial guess, fresh preconditioner every point) by
   >= 2x.
"""

import time

import numpy as np

from repro.core.params import CPUModelParams
from repro.sweep import PhaseTypeBackend, SweepGrid, SweepRunner

PARAMS = CPUModelParams.paper_defaults(T=0.3, D=0.05)
STAGES = 32

#: the LU baseline's demo size (states = 1 + STAGES*n_max + n_max + STAGES)
LU_DEMO_N_MAX = 250  # -> 8_283 states
#: the iterative-path demo size: >= 10x the LU baseline
BIG_N_MAX = 3_000  # -> 99_033 states

#: warm-vs-cold sweep: a dense 24-point threshold grid on a ~50k chain
SWEEP_N_MAX = 1_500
SWEEP_THRESHOLDS = tuple(np.linspace(0.25, 0.6, 24))


def best_of(fn, rounds=3):
    best, value = float("inf"), None
    for _ in range(rounds):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def test_gmres_solves_10x_beyond_lu_demo(benchmark):
    """The iterative path must handle >= 10x the LU demo's state count."""
    lu_backend = PhaseTypeBackend(
        PARAMS, stages=STAGES, n_max=LU_DEMO_N_MAX, method="lu"
    )
    lu_backend.prepare()
    t_lu, lu_solution = best_of(lambda: lu_backend.solve({}), rounds=1)

    big_backend = PhaseTypeBackend(
        PARAMS, stages=STAGES, n_max=BIG_N_MAX, method="gmres"
    )
    big_backend.prepare()

    def solve_big():
        big_backend.reset_solver_state()  # keep every round a full solve
        return big_backend.solve({})

    big_solution = benchmark(solve_big)
    t_big, _ = best_of(solve_big, rounds=1)

    assert big_backend.n_states >= 10 * lu_backend.n_states, (
        f"big chain {big_backend.n_states} states is not >= 10x the LU "
        f"demo's {lu_backend.n_states}"
    )
    # the big solve returns a genuine, usable distribution
    np.testing.assert_allclose(big_solution.pi.sum(), 1.0, rtol=0, atol=1e-12)
    assert big_solution.truncation_mass() < 1e-9
    assert np.isfinite(big_solution.power_mw())
    print(
        f"\nLU demo: {lu_backend.n_states} states in {t_lu * 1e3:.1f} ms; "
        f"GMRES: {big_backend.n_states} states "
        f"({big_backend.n_states / lu_backend.n_states:.1f}x) "
        f"in {t_big * 1e3:.1f} ms"
    )


def test_gmres_matches_lu_to_1e8(benchmark):
    """Where both solvers run, the stationary vectors agree to 1e-8."""
    lu_backend = PhaseTypeBackend(
        PARAMS, stages=STAGES, n_max=LU_DEMO_N_MAX, method="lu"
    )
    gmres_backend = PhaseTypeBackend(
        PARAMS, stages=STAGES, n_max=LU_DEMO_N_MAX, method="gmres"
    )
    pi_lu = lu_backend.solve({}).pi
    pi_gmres = benchmark(lambda: gmres_backend.solve({}).pi)
    gap = float(np.abs(pi_lu - pi_gmres).max())
    print(f"\nmax |pi_lu - pi_gmres| over {len(pi_lu)} states: {gap:.2e}")
    np.testing.assert_allclose(pi_gmres, pi_lu, rtol=0, atol=1e-8)

    # power iteration cross-check at a size where its mixing-limited
    # convergence stays cheap
    small_lu = PhaseTypeBackend(PARAMS, stages=8, n_max=40, method="lu")
    small_power = PhaseTypeBackend(
        PARAMS, stages=8, n_max=40, method="power", tol=1e-12
    )
    np.testing.assert_allclose(
        small_power.solve({}).pi, small_lu.solve({}).pi, rtol=0, atol=1e-8
    )


def test_warm_started_sweep_beats_cold_gmres(benchmark):
    """Dense 24-point threshold sweep: warm-started GMRES >= 2x cold."""
    grid = SweepGrid({"T": SWEEP_THRESHOLDS})
    backend = PhaseTypeBackend(
        PARAMS, stages=STAGES, n_max=SWEEP_N_MAX, method="gmres"
    )
    backend.prepare()
    metrics = ("power", "fraction:standby")

    def cold():
        rows = []
        for T in SWEEP_THRESHOLDS:
            backend.reset_solver_state()  # zero guess + fresh ILU per point
            solution = backend.solve({"T": T})
            rows.append([backend.evaluate(solution, m) for m in metrics])
        return np.asarray(rows)

    def warm():
        backend.reset_solver_state()  # pay the first point's setup inside
        result = SweepRunner(backend, list(metrics)).run(grid)
        return np.column_stack([result.column(m) for m in metrics])

    warm_vals = benchmark(warm)
    t_warm, _ = best_of(warm)
    t_cold, cold_vals = best_of(cold)

    np.testing.assert_allclose(warm_vals, cold_vals, rtol=0, atol=1e-7)
    speedup = t_cold / t_warm
    print(
        f"\n{len(SWEEP_THRESHOLDS)}-point sweep over {backend.n_states} "
        f"states: cold {t_cold * 1e3:.0f} ms, warm {t_warm * 1e3:.0f} ms, "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= 2.0, f"warm-started sweep only {speedup:.1f}x over cold"
