"""Batched stacked-solve benchmarks: one LAPACK call vs. the point loop.

Two claims are measured and *asserted*, not just timed (the acceptance
criteria of the batched sweep path, see ``docs/batched.md``):

1. On a 200-point Figure 4/5-style threshold grid at the paper's model
   size, the batched backend — every point of the grid assembled by one
   GEMM and solved through one batched LAPACK call — beats the pointwise
   phase-type backend (itself already template-shared and warm-started)
   by >= 3x.
2. The batched rows match the pointwise rows to 1e-9 (measured ~1e-13:
   the stacked assembly is bit-identical, only the factorisation
   differs).

The measured numbers are additionally written to ``BENCH_batched.json``
(plain JSON: times, speedup, parity error, configuration) so CI can
upload them next to the pytest-benchmark output as a perf trajectory.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.core.params import CPUModelParams
from repro.sweep import (
    BatchedPhaseTypeBackend,
    PhaseTypeBackend,
    SweepGrid,
    SweepRunner,
)

PARAMS = CPUModelParams.paper_defaults(T=0.3, D=0.05)
STAGES = 2
N_MAX = 10  # 33 states: the dense batched-LAPACK regime
GRID = SweepGrid.from_specs(["T=0.05:2.0:200"])
METRICS = ("power", "fraction:standby")
MIN_SPEEDUP = 3.0
PARITY_ATOL = 1e-9
JSON_OUT = Path(__file__).resolve().parent.parent / "BENCH_batched.json"


def best_of_interleaved(fn_a, fn_b, rounds=5):
    """Best wall time for two contenders, measured in alternating rounds.

    The batched side finishes in single-digit milliseconds, so measuring
    the two sides back-to-back lets a load spike land entirely on one of
    them and swing the ratio across the 3x assertion line on a noisy CI
    box.  Alternating rounds (after one untimed warmup each) exposes both
    sides to the same load profile.
    """
    best_a = best_b = float("inf")
    value_a, value_b = fn_a(), fn_b()  # warmup, untimed
    for _ in range(rounds):
        t0 = time.perf_counter()
        value_a = fn_a()
        best_a = min(best_a, time.perf_counter() - t0)
        t0 = time.perf_counter()
        value_b = fn_b()
        best_b = min(best_b, time.perf_counter() - t0)
    return best_a, value_a, best_b, value_b


def _metric_matrix(result):
    return np.column_stack([result.column(m) for m in METRICS])


def test_batched_sweep_speedup_and_parity(benchmark):
    """200-point threshold grid: stacked solves >= 3x pointwise, 1e-9."""
    pointwise_backend = PhaseTypeBackend(PARAMS, stages=STAGES, n_max=N_MAX)
    batched_backend = BatchedPhaseTypeBackend(
        PARAMS, stages=STAGES, n_max=N_MAX
    )

    def pointwise():
        # reset per round: measure a cold sweep, not a warmed re-run
        pointwise_backend.reset_solver_state()
        return SweepRunner(pointwise_backend, list(METRICS)).run(GRID)

    def batched():
        batched_backend.reset_solver_state()
        return SweepRunner(batched_backend, list(METRICS)).run(GRID)

    t_pointwise, result_pointwise, t_batched, result_batched = (
        best_of_interleaved(pointwise, batched)
    )
    benchmark(batched)

    assert result_pointwise.n_failed == 0
    assert result_batched.n_failed == 0
    parity_err = float(
        np.max(
            np.abs(
                _metric_matrix(result_batched)
                - _metric_matrix(result_pointwise)
            )
        )
    )
    speedup = t_pointwise / t_batched

    payload = {
        "benchmark": "bench_batched",
        "config": {
            "stages": STAGES,
            "n_max": N_MAX,
            "n_states": batched_backend.n_states,
            "grid_points": len(GRID.points()),
            "metrics": list(METRICS),
        },
        "pointwise_seconds": t_pointwise,
        "batched_seconds": t_batched,
        "speedup": speedup,
        "parity_max_abs_err": parity_err,
        "min_speedup_required": MIN_SPEEDUP,
        "parity_atol_required": PARITY_ATOL,
    }
    JSON_OUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"\nbatched sweep: pointwise {t_pointwise * 1e3:.1f} ms, "
        f"batched {t_batched * 1e3:.1f} ms, speedup {speedup:.2f}x, "
        f"parity {parity_err:.2e} -> {JSON_OUT.name}"
    )

    assert parity_err <= PARITY_ATOL, (
        f"batched rows diverge from pointwise: {parity_err:.3e}"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"batched sweep only {speedup:.2f}x over pointwise "
        f"(required >= {MIN_SPEEDUP}x; "
        f"pointwise {t_pointwise * 1e3:.1f} ms, "
        f"batched {t_batched * 1e3:.1f} ms)"
    )


def test_batched_sparse_regime_stays_at_parity(benchmark):
    """Above ``DENSE_BLOCK_LIMIT`` the block-diagonal sparse LU regime
    must stay at 1e-9 parity too (speed there is modest by design —
    asserted only not to regress *below* the pointwise path's half)."""
    stages, n_max = 8, 30  # 279 states: the sparse-LU regime
    grid = SweepGrid.from_specs(["T=0.05:2.0:48"])
    pointwise_backend = PhaseTypeBackend(PARAMS, stages=stages, n_max=n_max)
    batched_backend = BatchedPhaseTypeBackend(
        PARAMS, stages=stages, n_max=n_max
    )

    def pointwise():
        pointwise_backend.reset_solver_state()
        return SweepRunner(pointwise_backend, list(METRICS)).run(grid)

    def batched():
        batched_backend.reset_solver_state()
        return SweepRunner(batched_backend, list(METRICS)).run(grid)

    t_pointwise, result_pointwise, t_batched, result_batched = (
        best_of_interleaved(pointwise, batched)
    )
    benchmark(batched)

    parity_err = float(
        np.max(
            np.abs(
                _metric_matrix(result_batched)
                - _metric_matrix(result_pointwise)
            )
        )
    )
    assert parity_err <= PARITY_ATOL
    assert t_batched <= 2.0 * t_pointwise, (
        f"sparse-regime batching regressed: batched "
        f"{t_batched * 1e3:.1f} ms vs pointwise {t_pointwise * 1e3:.1f} ms"
    )
